"""The active/standby state machine daemons mix in, plus its RPC face.

A participant (the NameNode, or any HA-capable RPC service) gets:

* a typed active check — client-protocol methods call
  :meth:`HaParticipant.check_active` first, so calls landing on the
  standby travel back as a :class:`~repro.rpc.call.StandbyException`
  wire round-trip for the client's FailoverProxy to catch;
* journal writes with fencing — :meth:`journal_edit` appends under the
  participant's epoch and self-demotes (raising ``StandbyException``)
  if the journal has moved on;
* standby catch-up — a tail loop replays newly committed entries every
  ``dfs.ha.tail-edits.period``, and the failover controller runs one
  final :meth:`catch_up` under the new epoch before promotion, so an
  activating standby serves a complete namespace.

The mixin requires ``self.env`` to be set before :meth:`_ha_init` and
the host class to implement :meth:`_apply_entry` (and optionally
:meth:`_after_replay`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ha.journal import JournalFencedError, SharedJournal
from repro.ha.state import HAState, HaStateTracker
from repro.io.writables import NullWritable, Text
from repro.rpc.call import StandbyException
from repro.rpc.protocol import RpcProtocol

#: Per-entry standby replay cost (usec): in-memory re-application of an
#: already-durable edit — no fsync, a fraction of ``editlog_sync_us``.
REPLAY_US_PER_ENTRY = 12.0


class HAServiceProtocol(RpcProtocol):
    """Health/state probes the failover controller drives over RPC."""

    VERSION = 1

    def monitorHealth(self) -> NullWritable:
        """Succeeds iff the daemon is serving (any state); the
        controller reads liveness from the RPC outcome, not the body."""
        raise NotImplementedError

    def getServiceState(self) -> Text:
        """The daemon's current HA state ("active"/"standby")."""
        raise NotImplementedError


class HaParticipant:
    """Mixin: HA bookkeeping for one member of an active/standby pair."""

    def _ha_init(
        self,
        name: str,
        journal: SharedJournal,
        tracker: Optional[HaStateTracker] = None,
        gauge=None,
        tail_period_us: float = 0.0,
    ) -> None:
        self.ha_name = name
        self.journal = journal
        self.ha_tracker = tracker
        self._ha_gauge = gauge
        self.ha_state = HAState.STANDBY
        #: the epoch this participant last held as writer (0 = never).
        self.ha_epoch = 0
        #: highest journal txid applied to local state.
        self.applied_txid = 0
        journal.register_fence_hook(name, self._ha_fenced)
        if tracker is not None:
            tracker.record(name, HAState.STANDBY)
        if gauge is not None:
            gauge.set(0)
        if tail_period_us > 0:
            self.env.process(
                self._ha_tail_loop(tail_period_us), name=f"ha-tail:{name}"
            )

    # -- state transitions -------------------------------------------------
    def transition_to_active(self, epoch: int) -> None:
        """Promote (controller-driven, after fencing + catch-up)."""
        self.ha_epoch = epoch
        self.ha_state = HAState.ACTIVE
        if self.ha_tracker is not None:
            self.ha_tracker.record(self.ha_name, HAState.ACTIVE)
        if self._ha_gauge is not None:
            self._ha_gauge.set(1)

    def transition_to_standby(self) -> None:
        if self.ha_state is HAState.STANDBY:
            return
        self.ha_state = HAState.STANDBY
        if self.ha_tracker is not None:
            self.ha_tracker.record(self.ha_name, HAState.STANDBY)
        if self._ha_gauge is not None:
            self._ha_gauge.set(0)

    def _ha_fenced(self, new_epoch: int) -> None:
        """Journal fence hook: a newer epoch exists — stop acting active."""
        self.transition_to_standby()

    # -- serving-path hooks --------------------------------------------------
    def check_active(self, op: str) -> None:
        """Raise :class:`StandbyException` unless this member is active."""
        if self.ha_state is not HAState.ACTIVE:
            raise StandbyException(
                f"operation {op} is not supported in state standby "
                f"({self.ha_name})"
            )

    def journal_edit(self, op: str, payload: Dict[str, Any]) -> None:
        """Commit one edit under our epoch; self-demote if fenced."""
        try:
            self.applied_txid = self.journal.append(self.ha_epoch, op, payload)
        except JournalFencedError as exc:
            self.transition_to_standby()
            raise StandbyException(
                f"{self.ha_name}: fenced mid-write ({exc})"
            ) from exc

    # -- standby replay ------------------------------------------------------
    def catch_up(self):
        """Generator: replay every not-yet-applied journal entry.

        Charges :data:`REPLAY_US_PER_ENTRY` per entry before applying
        the batch, then re-checks for entries committed during the
        replay sleep — after a fence nothing new can appear, so the
        controller's promotion catch-up always converges.
        """
        while True:
            pending = self.journal.entries_since(self.applied_txid)
            if not pending:
                return
            yield self.env.timeout(REPLAY_US_PER_ENTRY * len(pending))
            for entry in pending:
                self._apply_entry(entry)
                self.applied_txid = entry.txid
            self._after_replay()

    def _ha_tail_loop(self, period_us: float):
        while True:
            yield self.env.timeout(period_us)
            if self.ha_state is HAState.STANDBY:
                yield from self.catch_up()

    def _apply_entry(self, entry) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _after_replay(self) -> None:
        """Post-batch hook (gauge refresh etc.); default: nothing."""

    # -- HAServiceProtocol ---------------------------------------------------
    def monitorHealth(self) -> NullWritable:
        return NullWritable()

    def getServiceState(self) -> Text:
        return Text(self.ha_state.value)
