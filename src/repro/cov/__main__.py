"""CLI: run the test suite under the stdlib line tracer.

    python -m repro.cov                  # report per-file coverage
    python -m repro.cov --check          # fail if below coverage-floor.txt
    python -m repro.cov --update-floor   # rewrite the floor from this run
    python -m repro.cov -- tests/rpc     # trailing args go to pytest

The floor file and the ``.coveragerc`` omit list are shared with the
CI job's ``pytest --cov=repro`` run; ``--update-floor`` subtracts a
safety margin (default 2 points) so the committed number stays valid
under coverage.py's slightly different line accounting.
"""

from __future__ import annotations

import argparse
import math
import os
import sys

from repro.cov import (
    FLOOR_FILE,
    CoverageTracer,
    format_report,
    measure,
    read_floor,
    read_omit_patterns,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.cov")
    parser.add_argument("--check", action="store_true",
                        help=f"exit 1 if total coverage < {FLOOR_FILE}")
    parser.add_argument("--update-floor", action="store_true",
                        help=f"write the measured floor to {FLOOR_FILE}")
    parser.add_argument("--margin", type=float, default=2.0,
                        help="safety margin subtracted by --update-floor")
    parser.add_argument("--source", default="src/repro",
                        help="package subtree to measure")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest")
    args = parser.parse_args(argv)

    import pytest  # deferred: keep module import side-effect free

    # Importing this tool already imported ``repro`` (whose __init__
    # pulls in config/calibration/simcore) *before* the tracer exists.
    # Purge those modules so pytest re-imports them under trace and
    # their module-level lines count as executed, not missing.  The
    # tool's own package stays resident (it is mid-execution) and is
    # omitted from measurement via .coveragerc instead.
    for name in sorted(sys.modules):
        if name == "repro" or (
            name.startswith("repro.") and not name.startswith("repro.cov")
        ):
            del sys.modules[name]

    tracer = CoverageTracer(args.source, omit=read_omit_patterns())
    with tracer:
        exit_code = pytest.main(args.pytest_args or ["-q"])
    if exit_code != 0:
        print(f"repro.cov: pytest failed (exit {exit_code}); no gate applied")
        return int(exit_code)

    reports, total = measure(tracer)
    print(format_report(reports, total, os.path.abspath(args.source)))
    if args.update_floor:
        floor = max(0.0, math.floor(total - args.margin))
        with open(FLOOR_FILE, "w", encoding="utf-8") as fh:
            fh.write(f"{floor:.0f}\n")
        print(f"repro.cov: floor updated to {floor:.0f}% "
              f"(measured {total:.1f}% - {args.margin:g} margin)")
    if args.check:
        floor = read_floor()
        if total < floor:
            print(f"repro.cov: FAIL — total {total:.1f}% < floor {floor:.1f}%")
            return 1
        print(f"repro.cov: OK — total {total:.1f}% >= floor {floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
