"""Line-coverage measurement with nothing but the standard library.

The CI coverage job runs ``pytest --cov=repro`` (coverage.py's C
tracer) against the committed floor in ``coverage-floor.txt``; this
package is the *local* counterpart for environments without
``pytest-cov`` installed: a ``sys.settrace`` line tracer plus an
AST-based executable-line analysis, sharing the same ``.coveragerc``
omit list and floor file, so the floor can be measured and checked
anywhere the test suite runs.

Methodology note: line classification is AST-based (statement header
lines, docstrings excluded, ``pragma: no cover`` blocks dropped) and
agrees with coverage.py to within a point or two — which is why
``--update-floor`` subtracts a small safety margin before committing
the number.
"""

from __future__ import annotations

import ast
import configparser
import fnmatch
import os
import sys
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: the single source of truth for the fail-under gate, shared with CI.
FLOOR_FILE = "coverage-floor.txt"
PRAGMA = "pragma: no cover"


# ------------------------------------------------------------- line analysis
def _docstring_lines(node: ast.AST) -> Set[int]:
    """Line span of ``node``'s docstring expression, if it has one."""
    body = getattr(node, "body", None)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        stmt = body[0]
        return set(range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1))
    return set()


def executable_lines(source: str) -> Set[int]:
    """Lines coverage should expect to execute, coverage.py-style:

    every statement's header line, minus docstrings, minus any
    statement whose header line carries a ``pragma: no cover`` comment
    (the whole statement body is excluded with it).
    """
    tree = ast.parse(source)
    raw_lines = source.splitlines()
    skipped: Set[int] = set()
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            skipped |= _docstring_lines(node)
        if not isinstance(node, ast.stmt):
            continue
        header = raw_lines[node.lineno - 1] if node.lineno <= len(raw_lines) else ""
        if PRAGMA in header:
            skipped |= set(range(node.lineno, (node.end_lineno or node.lineno) + 1))
            continue
        lines.add(node.lineno)
        for deco in getattr(node, "decorator_list", []):
            lines.add(deco.lineno)
    return lines - skipped


# ------------------------------------------------------------------- tracer
class CoverageTracer:
    """Records executed (file, line) pairs for files under ``root``."""

    def __init__(self, root: str, omit: Iterable[str] = ()):
        self.root = os.path.abspath(root) + os.sep
        self.omit = list(omit)
        self.executed: Dict[str, Set[int]] = {}
        # per-code-object admission cache: the global trace function
        # runs on every call event, so the filter must be cheap.
        self._admitted: Dict[str, bool] = {}

    def _admit(self, filename: str) -> bool:
        cached = self._admitted.get(filename)
        if cached is None:
            cached = filename.startswith(self.root) and not any(
                fnmatch.fnmatch(filename, pattern) for pattern in self.omit
            )
            self._admitted[filename] = cached
        return cached

    def _trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not self._admit(filename):
            return None
        lines = self.executed.setdefault(filename, set())

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        return local

    def __enter__(self):
        # Save whatever hooks are already installed so nested tracers
        # (tests/cov exercises this class *under* the suite-wide run)
        # hand tracing back instead of silencing the outer measurement.
        self._prev_sys = sys.gettrace()
        self._prev_threading = getattr(threading, "_trace_hook", None)
        threading.settrace(self._trace)
        sys.settrace(self._trace)
        return self

    def __exit__(self, *exc):
        sys.settrace(self._prev_sys)
        threading.settrace(self._prev_threading)  # type: ignore[arg-type]
        return False


# ------------------------------------------------------------------- report
class FileCoverage:
    def __init__(self, path: str, executable: Set[int], executed: Set[int]):
        self.path = path
        self.executable = executable
        self.executed = executed & executable

    @property
    def missing(self) -> List[int]:
        return sorted(self.executable - self.executed)

    @property
    def percent(self) -> float:
        if not self.executable:
            return 100.0
        return 100.0 * len(self.executed) / len(self.executable)


def read_omit_patterns(coveragerc: str = ".coveragerc") -> List[str]:
    """The [run] omit globs of ``.coveragerc`` (absolute-path form)."""
    parser = configparser.ConfigParser()
    if not parser.read(coveragerc):
        return []
    raw = parser.get("run", "omit", fallback="")
    patterns = [part.strip() for part in raw.splitlines() if part.strip()]
    return [os.path.abspath(pattern) for pattern in patterns]


def measure(
    tracer: CoverageTracer, root: Optional[str] = None
) -> Tuple[List[FileCoverage], float]:
    """Compare executed lines against every source file under ``root``
    (including files never imported, which count fully missing)."""
    root = os.path.abspath(root or tracer.root)
    reports = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            if not tracer._admit(path):
                continue
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            reports.append(FileCoverage(
                path, executable_lines(source), tracer.executed.get(path, set())
            ))
    total_executable = sum(len(r.executable) for r in reports)
    total_executed = sum(len(r.executed) for r in reports)
    total = (
        100.0 * total_executed / total_executable if total_executable else 100.0
    )
    return reports, total


def read_floor(path: str = FLOOR_FILE) -> float:
    with open(path, "r", encoding="utf-8") as fh:
        return float(fh.read().strip())


def format_report(reports: List[FileCoverage], total: float, base: str) -> str:
    width = max(
        (len(os.path.relpath(r.path, base)) for r in reports), default=10
    )
    lines = [f"{'file':<{width}s} {'stmts':>6s} {'miss':>6s} {'cover':>7s}"]
    for report in sorted(reports, key=lambda r: r.path):
        lines.append(
            f"{os.path.relpath(report.path, base):<{width}s} "
            f"{len(report.executable):>6d} "
            f"{len(report.executable) - len(report.executed):>6d} "
            f"{report.percent:>6.1f}%"
        )
    lines.append(f"{'TOTAL':<{width}s} {'':>6s} {'':>6s} {total:>6.1f}%")
    return "\n".join(lines)
