"""The simulation environment: clock plus event scheduler."""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Generator, Iterable, Optional

from repro.simcore import sanitizer as _sanitizer
from repro.simcore.events import AllOf, AnyOf, Event, NORMAL, PENDING, Timeout
from repro.simcore.process import Process


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to end :meth:`Environment.run` when its ``until`` fires."""


#: Cumulative number of events scheduled across all :meth:`Environment.run`
#: calls in this interpreter.  Read by the benchmark harness
#: (``python -m repro.experiments bench``) to report events/sec; updated
#: once per ``run()`` call, never in the hot loop.
_events_total = 0


def events_total() -> int:
    """Events scheduled during all completed ``Environment.run`` calls."""
    return _events_total


class Environment:
    """Execution environment for a simulation.

    Time starts at ``initial_time`` (default 0.0) and only moves forward
    as events are processed.  The event queue is a binary heap keyed on
    ``(time, priority, sequence)`` which guarantees deterministic FIFO
    ordering among same-time, same-priority events.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, eid, event)
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Free-lists of recycled Timeout/Event objects.  The fast run loop
        # returns an object here only when it can prove (via refcount) that
        # no simulation code still references it, so a pooled object is
        # indistinguishable from a fresh one.
        self._free_timeouts: list = []
        self._free_events: list = []
        # Bound at construction so per-event checks are a single branch.
        self._sanitizer = _sanitizer.current()
        if self._sanitizer is not None:
            self._sanitizer.note_environment(self)

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        free = self._free_events
        if free:
            # Recycled events come back fully reset (pending, empty
            # callback list) — see the fast loop in :meth:`run`.
            return free.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            t = free.pop()
            t.delay = delay
            t._ok = True
            t._value = value
            self._eid += 1
            heapq.heappush(self._queue, (self._now + delay, NORMAL, self._eid, t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if self._sanitizer is not None and delay < 0:
            self._sanitizer.past_schedule(self, delay)
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event.  Raises :class:`EmptySchedule` if none."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if self._sanitizer is not None:
            if when < self._now:
                self._sanitizer.clock_regression(self, when, self._now)
            self._now = when
            # Happens-before tracking: stamp the accesses made by this
            # event's callbacks with a fresh step id (slow path only —
            # _run_fast never runs with a sanitizer installed).
            self._sanitizer.note_step(self)
        else:
            self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: crash the simulation loudly.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue is empty, a time is reached, or an event fires.

        * ``until=None`` — run to exhaustion, return ``None``.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and
          return its value (re-raising if it failed).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    if stop._ok:
                        return stop._value
                    raise stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Priority below URGENT so same-instant urgent events run first.
                self._eid += 1
                heapq.heappush(self._queue, (at, NORMAL, self._eid, stop))
            stop.add_callback(self._stop_callback)

        eid_start = self._eid
        try:
            if self._sanitizer is None:
                self._run_fast()
            else:
                while True:
                    self.step()
        except StopSimulation as signal:
            event = signal.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                raise RuntimeError(
                    f"no scheduled events left but until={stop!r} has not fired"
                ) from None
            return None
        finally:
            global _events_total
            _events_total += self._eid - eid_start

    def _run_fast(self) -> None:
        """Sanitizer-off hot loop: :meth:`step` inlined with all lookups
        bound to locals, plus free-list recycling of dead Timeout/Event
        objects.

        Recycling rule: after an event's callbacks have run, the only
        remaining references are this frame's ``event`` local and
        ``getrefcount``'s argument — a refcount of exactly 2 therefore
        proves no process, condition, or user code can ever observe the
        object again.  Only exact ``Timeout``/``Event`` instances are
        pooled (never subclasses such as Process/Condition).
        """
        queue = self._queue
        pop = heapq.heappop
        free_timeouts = self._free_timeouts
        free_events = self._free_events
        getrc = getrefcount
        pending = PENDING
        timeout_cls = Timeout
        event_cls = Event
        while queue:
            when, _, _, event = pop(queue)
            self._now = when

            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)

            if event._ok is False and not event._defused:
                # An unhandled failure: crash the simulation loudly.
                raise event._value

            cls = event.__class__
            if cls is timeout_cls:
                if getrc(event) == 2:
                    event.callbacks = []
                    event._value = pending
                    event._ok = None
                    event._defused = False
                    free_timeouts.append(event)
            elif cls is event_cls:
                if getrc(event) == 2:
                    event.callbacks = []
                    event._value = pending
                    event._ok = None
                    event._defused = False
                    free_events.append(event)
        raise EmptySchedule()

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
