"""The simulation environment: clock plus event scheduler."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.simcore import sanitizer as _sanitizer
from repro.simcore.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.simcore.process import Process


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to end :meth:`Environment.run` when its ``until`` fires."""


class Environment:
    """Execution environment for a simulation.

    Time starts at ``initial_time`` (default 0.0) and only moves forward
    as events are processed.  The event queue is a binary heap keyed on
    ``(time, priority, sequence)`` which guarantees deterministic FIFO
    ordering among same-time, same-priority events.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, eid, event)
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Bound at construction so per-event checks are a single branch.
        self._sanitizer = _sanitizer.current()
        if self._sanitizer is not None:
            self._sanitizer.note_environment(self)

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if self._sanitizer is not None and delay < 0:
            self._sanitizer.past_schedule(self, delay)
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event.  Raises :class:`EmptySchedule` if none."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if self._sanitizer is not None and when < self._now:
            self._sanitizer.clock_regression(self, when, self._now)
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: crash the simulation loudly.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue is empty, a time is reached, or an event fires.

        * ``until=None`` — run to exhaustion, return ``None``.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and
          return its value (re-raising if it failed).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    if stop._ok:
                        return stop._value
                    raise stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Priority below URGENT so same-instant urgent events run first.
                self._eid += 1
                heapq.heappush(self._queue, (at, NORMAL, self._eid, stop))
            stop.add_callback(self._stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation as signal:
            event = signal.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                raise RuntimeError(
                    f"no scheduled events left but until={stop!r} has not fired"
                ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
