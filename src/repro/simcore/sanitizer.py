"""Opt-in runtime sim-sanitizer: the dynamic half of :mod:`repro.lint`.

Static analysis cannot see every invariant violation — a buffer that
leaks only under a rare interleaving, or an event scheduled into the
past from computed state.  The sanitizer catches those at runtime:

* :class:`~repro.simcore.environment.Environment` asserts clock
  monotonicity and *rejects* events scheduled with a negative delay;
* :class:`~repro.mem.native_pool.NativeBufferPool` keeps an
  outstanding-buffer ledger with acquisition sites and reports leaks at
  teardown;
* :class:`~repro.simcore.process.Process` instances whose generator
  died while waiters were still registered — the termination event was
  never delivered, so those waiters are stranded forever — are flagged
  at teardown.

Like the observability session (:mod:`repro.obs.runtime`), the
sanitizer is installed process-wide because experiments construct their
``Environment`` objects internally::

    from repro.simcore import sanitizer

    with sanitizer.sanitized() as session:
        fig5_micro.run()
    for line in session.report_lines():
        print(line)

With no session installed every hook is a single ``is None`` branch —
the sanitizer adds **no simulated-clock events and no RNG draws**, so
reported numbers are bit-identical with and without it.  The
experiments CLI exposes it as ``python -m repro.experiments <exp>
--sanitize``.
"""

from __future__ import annotations

import traceback
from contextlib import contextmanager
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.environment import Environment
    from repro.simcore.process import Process


class SanitizerError(AssertionError):
    """A simulation-safety invariant was violated at runtime."""


#: Path fragments whose frames are skipped when attributing an
#: acquisition site — we want the *caller* of the pool, not the pool.
_INTERNAL_FRAGMENTS = ("mem/native_pool.py", "simcore/sanitizer.py")


def acquisition_site(limit: int = 12) -> str:
    """``file:line in func`` of the nearest frame outside pool internals."""
    for frame in reversed(traceback.extract_stack(limit=limit)[:-1]):
        filename = frame.filename.replace("\\", "/")
        if not filename.endswith(_INTERNAL_FRAGMENTS):
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class SimSanitizer:
    """Collects invariant checks across every Environment/pool built
    while installed, and renders one teardown report."""

    def __init__(self, label: str = ""):
        self.label = label
        self.environments = 0
        self.pools: List[object] = []
        self.processes: List["Process"] = []
        #: violations that were raised (kept for the report even though
        #: the offending run crashed)
        self.violations: List[str] = []

    # -- hooks (called by the instrumented components) ---------------------
    def note_environment(self, env: "Environment") -> None:
        self.environments += 1

    def note_pool(self, pool: object) -> None:
        self.pools.append(pool)

    def note_process(self, process: "Process") -> None:
        self.processes.append(process)

    def past_schedule(self, env: "Environment", delay: float) -> None:
        message = (
            f"past-scheduled event rejected: delay={delay!r} at t={env.now!r}"
        )
        self.violations.append(message)
        raise SanitizerError(message)

    def clock_regression(
        self, env: "Environment", event_time: float, now: float
    ) -> None:
        message = (
            f"clock regression: next event at t={event_time!r} but "
            f"now={now!r} — the heap ordering invariant is broken"
        )
        self.violations.append(message)
        raise SanitizerError(message)

    # -- teardown reporting ------------------------------------------------
    def pool_leaks(self) -> List[Tuple[object, List[str]]]:
        """(pool, acquisition sites of still-outstanding buffers)."""
        leaks = []
        for pool in self.pools:
            sites = pool.sanitizer_outstanding()
            if sites:
                leaks.append((pool, sites))
        return leaks

    def stalled_processes(self) -> List["Process"]:
        """Processes whose generator died with waiters never notified.

        A Process is also the event of its own termination: when the
        generator returns or raises, that event is scheduled and its
        callbacks (the waiters) are delivered on the next step.  If the
        scheduler stops first — a crash mid-step, a truncated run —
        the generator is dead but ``callbacks`` is still a non-empty
        list: every one of those waiters is silently stranded.

        Blocked-but-alive processes are deliberately *not* flagged:
        daemon chains (a receive loop yielding on a socket read) look
        structurally identical to deadlock, so an alive-process check
        cannot avoid false positives.
        """
        return [
            process
            for process in self.processes
            if not process.is_alive and process.callbacks
        ]

    @property
    def clean(self) -> bool:
        return (
            not self.violations
            and not self.pool_leaks()
            and not self.stalled_processes()
        )

    def report_lines(self) -> List[str]:
        lines: List[str] = []
        for message in self.violations:
            lines.append(f"sanitizer: VIOLATION {message}")
        for pool, sites in self.pool_leaks():
            lines.append(
                f"sanitizer: LEAK {len(sites)} buffer(s) outstanding in {pool!r}"
            )
            for site in sites:
                lines.append(f"sanitizer:   acquired at {site}")
        for process in self.stalled_processes():
            lines.append(
                f"sanitizer: STALLED {process!r} died with "
                f"{len(process.callbacks)} waiter(s) never notified"
            )
        return lines

    def summary(self) -> str:
        checked = (
            f"{self.environments} environment(s), {len(self.pools)} pool(s), "
            f"{len(self.processes)} process(es)"
        )
        if self.clean:
            return f"sanitizer: clean — {checked}"
        issues = (
            len(self.violations)
            + sum(len(sites) for _, sites in self.pool_leaks())
            + len(self.stalled_processes())
        )
        return f"sanitizer: {issues} issue(s) — {checked}"


_current: Optional[SimSanitizer] = None


def current() -> Optional[SimSanitizer]:
    """The active sanitizer, if any (consulted at construction time by
    Environment and NativeBufferPool)."""
    return _current


def install(session: SimSanitizer) -> None:
    global _current
    if _current is not None:
        raise RuntimeError("a SimSanitizer is already installed")
    _current = session


def uninstall() -> None:
    global _current
    _current = None


@contextmanager
def sanitized(label: str = ""):
    """Scope a :class:`SimSanitizer` around a block of simulation runs."""
    session = SimSanitizer(label=label)
    install(session)
    try:
        yield session
    finally:
        uninstall()
