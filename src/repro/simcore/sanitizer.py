"""Opt-in runtime sim-sanitizer: the dynamic half of :mod:`repro.lint`.

Static analysis cannot see every invariant violation — a buffer that
leaks only under a rare interleaving, or an event scheduled into the
past from computed state.  The sanitizer catches those at runtime:

* :class:`~repro.simcore.environment.Environment` asserts clock
  monotonicity and *rejects* events scheduled with a negative delay;
* :class:`~repro.mem.native_pool.NativeBufferPool` keeps an
  outstanding-buffer ledger with acquisition sites and reports leaks at
  teardown;
* :class:`~repro.simcore.process.Process` instances whose generator
  died while waiters were still registered — the termination event was
  never delivered, so those waiters are stranded forever — are flagged
  at teardown.

Like the observability session (:mod:`repro.obs.runtime`), the
sanitizer is installed process-wide because experiments construct their
``Environment`` objects internally::

    from repro.simcore import sanitizer

    with sanitizer.sanitized() as session:
        fig5_micro.run()
    for line in session.report_lines():
        print(line)

With no session installed every hook is a single ``is None`` branch —
the sanitizer adds **no simulated-clock events and no RNG draws**, so
reported numbers are bit-identical with and without it.  The
experiments CLI exposes it as ``python -m repro.experiments <exp>
--sanitize``.
"""

from __future__ import annotations

import traceback
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.environment import Environment
    from repro.simcore.process import Process


class SanitizerError(AssertionError):
    """A simulation-safety invariant was violated at runtime."""


class HappensBeforeTracker:
    """Dynamic cross-check for lint rule SIM009 (same-timestamp races).

    The static rule flags shared attributes that several process bodies
    touch with no event ordering in between; this tracker *observes*
    those accesses at runtime.  Components opt specific objects in via
    :meth:`track` (the rpc Server registers its WRR mux and decay
    scheduler); tracking swaps the object's class for a generated
    subclass whose ``__setattr__``/``__getattribute__`` report into the
    tracker, so the object itself needs no cooperation.

    Every access is stamped with the current *event step* — a counter
    :meth:`note_step` bumps each time the Environment pops an event.
    When the clock advances, the accesses gathered at the old timestamp
    are analyzed: a (label, attr) touched from **two or more distinct
    steps at one timestamp with at least one write** is a confirmed
    race — only the heap's eid tie-break, not any happens-before edge,
    ordered those accesses, so reordering same-timestamp events would
    change the result.  A static SIM009 finding with no runtime
    confirmation stays *static-only*; a RACE line here is *confirmed*.
    """

    def __init__(self) -> None:
        self._step = 0  # 0 = before any event step (construction time)
        self._now: Optional[float] = None
        #: accesses at the current timestamp: (label, attr, kind, step)
        self._group: List[Tuple[str, str, str, int]] = []
        #: id(obj) -> (obj, tracked attrs, label); holds a strong ref so
        #: the id cannot be recycled while the tracker is live.
        self._objects: Dict[int, Tuple[object, "frozenset[str]", str]] = {}
        self._class_cache: Dict[type, type] = {}
        self._hazard_keys: Set[Tuple[str, str]] = set()
        self.hazards: List[str] = []
        self.reads = 0
        self.writes = 0

    # -- instrumentation ---------------------------------------------------
    def track(self, obj: object, attrs: Iterable[str], label: str) -> object:
        """Start recording accesses to ``attrs`` on ``obj``."""
        self._objects[id(obj)] = (obj, frozenset(attrs), label)
        obj.__class__ = self._instrumented(type(obj))
        return obj

    def _instrumented(self, cls: type) -> type:
        cached = self._class_cache.get(cls)
        if cached is not None:
            return cached
        tracker = self

        class Tracked(cls):  # type: ignore[misc, valid-type]
            def __setattr__(self, name, value):
                tracker._note(self, name, "write")
                super().__setattr__(name, value)

            def __getattribute__(self, name):
                tracker._note(self, name, "read")
                return super().__getattribute__(name)

        Tracked.__name__ = cls.__name__
        Tracked.__qualname__ = cls.__qualname__
        self._class_cache[cls] = Tracked
        return Tracked

    def _note(self, obj: object, name: str, kind: str) -> None:
        entry = self._objects.get(id(obj))
        if entry is None or name not in entry[1]:
            return
        if kind == "write":
            self.writes += 1
        else:
            self.reads += 1
        self._group.append((entry[2], name, kind, self._step))

    # -- event-step bookkeeping (driven by Environment.step) ---------------
    def note_step(self, env: "Environment") -> None:
        now = env.now
        if now != self._now:
            self._flush()
            self._now = now
        self._step += 1

    def _flush(self) -> None:
        if not self._group:
            return
        by_key: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
        for label, attr, kind, step in self._group:
            by_key.setdefault((label, attr), []).append((kind, step))
        for (label, attr), accesses in sorted(by_key.items()):
            steps = {step for _, step in accesses}
            write_count = sum(1 for kind, _ in accesses if kind == "write")
            if (
                write_count
                and len(steps) >= 2
                and (label, attr) not in self._hazard_keys
            ):
                self._hazard_keys.add((label, attr))
                self.hazards.append(
                    f"{label}.{attr}: {write_count} write(s), "
                    f"{len(accesses) - write_count} read(s) across "
                    f"{len(steps)} event steps at t={self._now!r} — only the "
                    "eid tie-break ordered them (confirms SIM009)"
                )
        self._group.clear()

    def finalize(self) -> None:
        """Analyze the last timestamp group (idempotent)."""
        self._flush()

    @property
    def tracked(self) -> int:
        return len(self._objects)


#: Path fragments whose frames are skipped when attributing an
#: acquisition site — we want the *caller* of the pool, not the pool.
_INTERNAL_FRAGMENTS = ("mem/native_pool.py", "simcore/sanitizer.py")


def acquisition_site(limit: int = 12) -> str:
    """``file:line in func`` of the nearest frame outside pool internals."""
    for frame in reversed(traceback.extract_stack(limit=limit)[:-1]):
        filename = frame.filename.replace("\\", "/")
        if not filename.endswith(_INTERNAL_FRAGMENTS):
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class SimSanitizer:
    """Collects invariant checks across every Environment/pool built
    while installed, and renders one teardown report."""

    def __init__(self, label: str = "", track_races: bool = False):
        self.label = label
        self.environments = 0
        self.pools: List[object] = []
        self.processes: List["Process"] = []
        #: violations that were raised (kept for the report even though
        #: the offending run crashed)
        self.violations: List[str] = []
        #: happens-before race tracker (SIM009 cross-check), armed only
        #: by ``track_races`` — class-swap instrumentation is far too
        #: hot for the default --sanitize path.
        self.hb: Optional[HappensBeforeTracker] = (
            HappensBeforeTracker() if track_races else None
        )

    # -- hooks (called by the instrumented components) ---------------------
    def note_environment(self, env: "Environment") -> None:
        self.environments += 1

    def note_step(self, env: "Environment") -> None:
        """Per-event hook from :meth:`Environment.step` (slow path only)."""
        if self.hb is not None:
            self.hb.note_step(env)

    def track(self, obj: object, attrs: Iterable[str], label: str) -> object:
        """Opt ``obj`` into happens-before tracking (no-op without
        ``track_races`` — callers never need to check)."""
        if self.hb is not None:
            return self.hb.track(obj, attrs, label)
        return obj

    def note_pool(self, pool: object) -> None:
        self.pools.append(pool)

    def note_process(self, process: "Process") -> None:
        self.processes.append(process)

    def past_schedule(self, env: "Environment", delay: float) -> None:
        message = (
            f"past-scheduled event rejected: delay={delay!r} at t={env.now!r}"
        )
        self.violations.append(message)
        raise SanitizerError(message)

    def clock_regression(
        self, env: "Environment", event_time: float, now: float
    ) -> None:
        message = (
            f"clock regression: next event at t={event_time!r} but "
            f"now={now!r} — the heap ordering invariant is broken"
        )
        self.violations.append(message)
        raise SanitizerError(message)

    # -- teardown reporting ------------------------------------------------
    def pool_leaks(self) -> List[Tuple[object, List[str]]]:
        """(pool, acquisition sites of still-outstanding buffers)."""
        leaks = []
        for pool in self.pools:
            sites = pool.sanitizer_outstanding()
            if sites:
                leaks.append((pool, sites))
        return leaks

    def stalled_processes(self) -> List["Process"]:
        """Processes whose generator died with waiters never notified.

        A Process is also the event of its own termination: when the
        generator returns or raises, that event is scheduled and its
        callbacks (the waiters) are delivered on the next step.  If the
        scheduler stops first — a crash mid-step, a truncated run —
        the generator is dead but ``callbacks`` is still a non-empty
        list: every one of those waiters is silently stranded.

        Blocked-but-alive processes are deliberately *not* flagged:
        daemon chains (a receive loop yielding on a socket read) look
        structurally identical to deadlock, so an alive-process check
        cannot avoid false positives.
        """
        return [
            process
            for process in self.processes
            if not process.is_alive and process.callbacks
        ]

    def races(self) -> List[str]:
        """Confirmed same-timestamp races (empty without ``track_races``)."""
        if self.hb is None:
            return []
        self.hb.finalize()
        return list(self.hb.hazards)

    @property
    def clean(self) -> bool:
        return (
            not self.violations
            and not self.pool_leaks()
            and not self.stalled_processes()
            and not self.races()
        )

    def report_lines(self) -> List[str]:
        lines: List[str] = []
        for message in self.violations:
            lines.append(f"sanitizer: VIOLATION {message}")
        for race in self.races():
            lines.append(f"sanitizer: RACE {race}")
        for pool, sites in self.pool_leaks():
            lines.append(
                f"sanitizer: LEAK {len(sites)} buffer(s) outstanding in {pool!r}"
            )
            for site in sites:
                lines.append(f"sanitizer:   acquired at {site}")
        for process in self.stalled_processes():
            lines.append(
                f"sanitizer: STALLED {process!r} died with "
                f"{len(process.callbacks)} waiter(s) never notified"
            )
        return lines

    def summary(self) -> str:
        checked = (
            f"{self.environments} environment(s), {len(self.pools)} pool(s), "
            f"{len(self.processes)} process(es)"
        )
        if self.hb is not None:
            checked += (
                f", {self.hb.tracked} race-tracked object(s) "
                f"({self.hb.writes}w/{self.hb.reads}r)"
            )
        if self.clean:
            return f"sanitizer: clean — {checked}"
        issues = (
            len(self.violations)
            + sum(len(sites) for _, sites in self.pool_leaks())
            + len(self.stalled_processes())
            + len(self.races())
        )
        return f"sanitizer: {issues} issue(s) — {checked}"


_current: Optional[SimSanitizer] = None


def current() -> Optional[SimSanitizer]:
    """The active sanitizer, if any (consulted at construction time by
    Environment and NativeBufferPool)."""
    return _current


def install(session: SimSanitizer) -> None:
    global _current
    if _current is not None:
        raise RuntimeError("a SimSanitizer is already installed")
    _current = session


def uninstall() -> None:
    global _current
    _current = None


@contextmanager
def sanitized(label: str = "", track_races: bool = False):
    """Scope a :class:`SimSanitizer` around a block of simulation runs."""
    session = SimSanitizer(label=label, track_races=track_races)
    install(session)
    try:
        yield session
    finally:
        uninstall()
