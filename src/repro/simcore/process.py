"""Simulation processes: generator coroutines driven by events."""

from __future__ import annotations

from heapq import heappush
from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simcore.events import Event, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; the event it was
    waiting on remains valid and may be re-yielded.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class Process(Event):
    """Wraps a generator; the Process *is* the event of its termination.

    The generator yields :class:`Event` instances.  When a yielded event
    is processed, the generator is resumed with the event's value (or
    the failure exception is thrown into it).  When the generator
    returns, the Process event succeeds with the return value.
    """

    __slots__ = ("generator", "_target", "name", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        # Event.__init__ inlined: one Process per socket send/recv makes
        # this constructor hot on the RPC path.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.generator = generator
        # Bound methods cached once: the resume trampoline runs per event
        # and re-binding send/throw/_resume there shows up in profiles.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick the generator off via an immediately-scheduled init event
        # (drawn from the environment's free-list when one is available).
        free = env._free_events
        init = free.pop() if free else Event(env)
        init.callbacks.append(self._resume_cb)
        init._ok = True
        init._value = None
        env._eid += 1
        heappush(env._queue, (env._now, URGENT, env._eid, init))
        self._target = init
        san = env._sanitizer
        if san is not None:
            san.note_process(self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        if not self.is_alive:
            raise RuntimeError(f"{self.name}: cannot interrupt a dead process")
        if self._target is None:
            raise RuntimeError(f"{self.name}: process cannot interrupt itself")
        # Detach from what it was waiting on and resume with the throw.
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        if self._target.callbacks is not None:
            self._target.remove_callback(self._resume_cb)
        interrupt_ev.callbacks.append(self._resume_cb)
        self.env.schedule(interrupt_ev, priority=URGENT)
        self._target = interrupt_ev

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        send = self._send
        throw = self._throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                # Inlined self.succeed(stop.value, priority=URGENT): a
                # live Process is PENDING by construction.
                self._target = None
                self._ok = True
                self._value = stop.value
                env._eid += 1
                heappush(env._queue, (env._now, URGENT, env._eid, self))
                break
            except BaseException as exc:
                self._target = None
                self.fail(exc, priority=URGENT)
                break

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                exc = TypeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    throw(exc)
                except StopIteration as stop:  # pragma: no cover - unusual
                    self._target = None
                    self.succeed(stop.value, priority=URGENT)
                    break
                except BaseException as exc2:
                    self._target = None
                    self.fail(exc2, priority=URGENT)
                    break
                continue
            if callbacks is not None:
                # Event still pending or scheduled: wait for it
                # (inlined next_event.add_callback(self._resume)).
                callbacks.append(self._resume_cb)
                self._target = next_event
                break
            # Event already processed: loop and feed its value straight in.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
