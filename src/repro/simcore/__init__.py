"""Discrete-event simulation engine underlying the RPCoIB reproduction.

The engine is a from-scratch, generator-coroutine DES in the style of
SimPy: simulation processes are Python generators that ``yield`` events
(timeouts, resource requests, store gets, other processes) and are
resumed by the :class:`~repro.simcore.environment.Environment` scheduler
when those events fire.  Simulated time is a ``float`` whose unit is
*microseconds* by convention throughout the project (see
:mod:`repro.units`).

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(5.0)
        return "done"
    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
"""

from repro.simcore.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    EventAlreadyTriggered,
    Timeout,
)
from repro.simcore.process import Interrupt, Process
from repro.simcore.environment import Environment
from repro.simcore.resources import (
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)
from repro.simcore.monitor import Counter, Histogram, StatsRegistry, Tally, TimeWeighted
from repro.simcore.rng import RngRegistry, named_stream, stable_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "Histogram",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "StatsRegistry",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "named_stream",
    "stable_seed",
]
