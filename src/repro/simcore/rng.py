"""Deterministic random-number streams.

Every stochastic component draws from its own named stream so that (a)
runs are reproducible given a seed and (b) adding randomness to one
component does not perturb another's draws — the standard DES
variance-reduction discipline.

This module is the only place simulation code may touch the raw
``random``/``numpy.random`` generators (rule SIM002 of
:mod:`repro.lint` enforces this).  Components either receive a stream
from their cluster, or default to :func:`named_stream`, whose seed
derivation is stable across interpreter runs — never the builtin
``hash()``, which is salted per process by ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Dict

import numpy as np

#: Re-export so simulation modules need no direct ``import random``.
Random = random.Random

#: Project-wide default seed: the ICPP 2013 conference date, for flavor.
DEFAULT_SEED = 20130901


def stable_seed(*parts: "str | int") -> int:
    """A process-stable 32-bit seed derived from ``parts``.

    Chains CRC-32 over the string form of each part — unlike the
    builtin ``hash()``, the result is identical across interpreter
    runs, platforms, and ``PYTHONHASHSEED`` values.
    """
    acc = 0
    for part in parts:
        acc = zlib.crc32(str(part).encode("utf-8"), acc)
    return acc


def named_stream(name: str, seed: int = DEFAULT_SEED) -> random.Random:
    """A standalone deterministic stream dedicated to ``name``.

    The default RNG for components constructed without an explicit
    stream (e.g. a bare ``DataNode``): two processes building the same
    component get identical draws.
    """
    return random.Random(stable_seed(seed, name))


class RngRegistry:
    """Factory of named, independently-seeded random streams."""

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> random.Random:
        """A ``random.Random`` dedicated to ``name`` (cheap scalar draws)."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def np_stream(self, name: str) -> np.random.Generator:
        """A NumPy generator dedicated to ``name`` (bulk array draws)."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(self._derive(name))
        return self._np_streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(self._derive(f"fork:{salt}"))
