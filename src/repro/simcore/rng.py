"""Deterministic random-number streams.

Every stochastic component draws from its own named stream so that (a)
runs are reproducible given a seed and (b) adding randomness to one
component does not perturb another's draws — the standard DES
variance-reduction discipline.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named, independently-seeded random streams."""

    def __init__(self, seed: int = 20130901):
        # Default seed: the ICPP 2013 conference date, for flavor.
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> random.Random:
        """A ``random.Random`` dedicated to ``name`` (cheap scalar draws)."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def np_stream(self, name: str) -> np.random.Generator:
        """A NumPy generator dedicated to ``name`` (bulk array draws)."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(self._derive(name))
        return self._np_streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(self._derive(f"fork:{salt}"))
