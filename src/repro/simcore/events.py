"""Core event types for the DES engine.

An :class:`Event` is the unit of coordination: processes yield events
and the scheduler resumes them when the event *fires*.  Events fire in
two phases: ``succeed``/``fail`` marks the event triggered and enqueues
it; the scheduler later *processes* it by running its callbacks at the
scheduled simulation time.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.environment import Environment

#: Sentinel for "event has no value yet".
PENDING = object()

#: Scheduling priorities.  URGENT events (interrupts, process resume
#: bookkeeping) run before NORMAL events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class EventAlreadyTriggered(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a triggered event."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    Callbacks are callables of one argument (the event itself), invoked
    in registration order when the event is processed.  After
    processing, ``callbacks`` is ``None`` and late registrations are
    invoked immediately by :meth:`add_callback`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid when triggered."""
        if self._value is PENDING:
            raise AttributeError("Event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is PENDING:
            raise AttributeError("Event has not been triggered yet")
        return self._value

    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self, priority): delay is always 0 here so
        # the sanitizer's negative-delay check can never fire.
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, priority, env._eid, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event that is processed while no process is waiting on
        it (and nobody called :meth:`defuse`) stops the simulation with
        the exception — silent failures hide bugs.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, priority, env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- callbacks -----------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run inline so late waiters still wake.
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Field init + scheduling inlined (no super().__init__ / env.schedule
        # calls): this constructor runs once per simulated event and
        # dominates the scheduler's allocation profile.  ``delay >= 0`` is
        # already established, so the sanitizer check cannot fire.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class ConditionValue:
    """Ordered mapping of event -> value for fired condition members."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def values(self) -> list:
        return [e._value for e in self.events]

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Fires when ``evaluate(events, n_fired)`` becomes true.

    Used through :class:`AllOf` / :class:`AnyOf` or the ``&``/``|``
    operators on events.  The value is a :class:`ConditionValue` of the
    member events that had fired by the time the condition triggered.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        # Event.__init__ inlined: one Condition per transfer join /
        # keeper wakeup makes this constructor hot on the RPC path.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed(ConditionValue())
            return
        check = self._check
        for event in self._events:
            if event.env is not env:
                raise ValueError("events of a Condition must share one Environment")
            callbacks = event.callbacks
            if callbacks is None:  # already processed
                check(event)
            else:
                callbacks.append(check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition) and event.triggered and event._ok:
                event._populate_value(value)
            elif event.callbacks is None and event.triggered:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: list, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once all ``events`` have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once any of ``events`` has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
