"""Measurement primitives for simulation statistics.

Everything the experiment harness reports flows through these: latency
tallies, throughput counters, time-weighted queue depths, and
fixed-bucket histograms (used e.g. for the message-size-locality
figure).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """Monotonic event counter with an optional byte/ops meaning."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Tally:
    """Streaming summary of observed samples (latencies, sizes, ...).

    Stores all samples for exact percentiles; the workloads in this
    project are bounded (at most a few hundred thousand observations)
    so exactness beats approximation here.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return math.fsum(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean; ``nan`` when no samples were observed."""
        if not self.samples:
            return math.nan
        return self.total / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(math.fsum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Exact percentile via linear interpolation; ``q`` in [0, 100].

        Returns ``nan`` when no samples were observed (an out-of-range
        ``q`` is still a caller bug and raises).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q={q} out of [0, 100]")
        if not self.samples:
            return math.nan
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def merge(self, other: "Tally") -> "Tally":
        """Fold ``other``'s samples into this tally (for cross-run or
        cross-node aggregation); returns ``self`` for chaining."""
        self.samples.extend(other.samples)
        return self

    def __repr__(self) -> str:
        if not self.samples:
            return f"<Tally {self.name} empty>"
        return (
            f"<Tally {self.name} n={self.count} mean={self.mean:.3f}"
            f" min={self.minimum:.3f} max={self.maximum:.3f}>"
        )


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Typical use: queue depth or pool occupancy.  Call ``update(now,
    value)`` whenever the signal changes; ``mean(now)`` integrates up to
    ``now``.
    """

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._value = initial
        self._last_time = start_time
        self._area = 0.0
        self._start = start_time

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def mean(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span


class Histogram:
    """Histogram over explicit bucket upper bounds (plus overflow).

    ``bounds`` must be strictly increasing.  A sample ``x`` lands in the
    first bucket with ``x <= bound``; larger samples land in the
    overflow bucket.
    """

    def __init__(self, bounds: Sequence[float], name: str = ""):
        bounds = list(bounds)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bucket_of(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def items(self) -> Iterable[Tuple[str, int]]:
        labels = [f"<={b:g}" for b in self.bounds] + [f">{self.bounds[-1]:g}"]
        return zip(labels, self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} total={self.total}>"


class StatsRegistry:
    """Named collection of monitors shared across a simulation.

    Components create or look up monitors by dotted name so the
    experiment harness can collect everything in one sweep.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.time_weighted: Dict[str, TimeWeighted] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def tally(self, name: str) -> Tally:
        if name not in self.tallies:
            self.tallies[name] = Tally(name)
        return self.tallies[name]

    def timeweighted(self, name: str, **kwargs) -> TimeWeighted:
        if name not in self.time_weighted:
            self.time_weighted[name] = TimeWeighted(name, **kwargs)
        return self.time_weighted[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counter values and tally means, for reports."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"counter.{name}"] = counter.value
        for name, tally in self.tallies.items():
            if tally.count:
                out[f"tally.{name}.mean"] = tally.mean
                out[f"tally.{name}.count"] = tally.count
        return out
