"""Shared-resource primitives: Resource, PriorityResource, Store.

These model the contention points of the simulated systems: RPC handler
pools, NIC transmit engines, disk arms, call queues.  The API follows
SimPy semantics: ``request()``/``put()``/``get()`` return events that a
process yields; ``Request`` doubles as a context manager that releases
on exit (including when the waiting process is interrupted).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.simcore.events import Event, NORMAL, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "key")

    def __init__(self, resource: "Resource", key: tuple = ()):
        # Event.__init__ inlined: one Request per resource claim makes
        # this constructor hot on the RPC path.
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.key = key
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered and self._ok:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A pool of ``capacity`` interchangeable slots with a FIFO queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a granted slot and wake the next waiter, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError("releasing a request that does not hold a slot")
        self._grant_next()

    # -- internals -------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            # Inlined request.succeed(request): the Request was created
            # this instant, so it is provably still PENDING.
            request._ok = True
            request._value = request
            env = self.env
            env._eid += 1
            heappush(env._queue, (env._now, NORMAL, env._eid, request))
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _dequeue(self) -> Optional[Request]:
        return self.queue.popleft() if self.queue else None

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._dequeue()
            if nxt is None:
                return
            if nxt.triggered:  # cancelled-but-not-removed safety
                continue
            self.users.append(nxt)
            nxt.succeed(nxt)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.count}/{self.capacity} used,"
            f" {len(self.queue)} queued>"
        )


class PriorityResource(Resource):
    """Resource whose waiters are served by (priority, FIFO) order.

    Lower ``priority`` values are served first.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self.queue: list = []  # heap of (priority, seq, request)
        self._seq = itertools.count()

    def request(self, priority: int = 0) -> Request:  # type: ignore[override]
        return Request(self, key=(priority,))

    def _enqueue(self, request: Request) -> None:
        priority = request.key[0] if request.key else 0
        heapq.heappush(self.queue, (priority, next(self._seq), request))

    def _dequeue(self) -> Optional[Request]:
        return heapq.heappop(self.queue)[2] if self.queue else None

    def _cancel(self, request: Request) -> None:
        self.queue = [entry for entry in self.queue if entry[2] is not request]
        heapq.heapify(self.queue)


class StorePut(Event):
    __slots__ = ("item", "_store_queue")

    def __init__(self, store: "Store", item: Any):
        # Event.__init__ inlined: one StorePut per queued message.
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.item = item
        self._store_queue: Optional[deque] = None
        store._do_put(self)

    def cancel(self) -> None:
        """Withdraw an ungranted put from the wait queue."""
        if self._store_queue is not None:
            try:
                self._store_queue.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    __slots__ = ("filter", "_store_queue")

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        # Event.__init__ inlined: one StoreGet per consumed message.
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.filter = filter
        self._store_queue: Optional[deque] = None
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw an unserved get from the wait queue."""
        if self._store_queue is not None:
            try:
                self._store_queue.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO buffer of Python objects with optional capacity.

    ``put(item)`` blocks when full; ``get()`` blocks when empty.  This
    is the call-queue primitive of the RPC server and the channel
    primitive for inter-daemon messaging.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    # -- internals -------------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            # Inlined event.succeed(): a StorePut is triggered at most
            # once, in the same instant it is created.
            event._ok = True
            event._value = None
            env = self.env
            env._eid += 1
            heappush(env._queue, (env._now, NORMAL, env._eid, event))
            if self._getters:
                self._serve_getters()
        else:
            event._store_queue = self._putters
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        items = self.items
        if items and event.filter is None:
            # Fast path: plain FIFO get with stock on hand (every RPC
            # queue).  Inlined ``_match`` + ``event.succeed(item)``.
            event._ok = True
            event._value = items.popleft()
            env = self.env
            env._eid += 1
            heappush(env._queue, (env._now, NORMAL, env._eid, event))
            if self._putters:
                self._serve_putters()
            return
        item = self._match(event)
        if item is not _NO_ITEM:
            event.succeed(item)
            if self._putters:
                self._serve_putters()
        else:
            event._store_queue = self._getters
            self._getters.append(event)

    def _match(self, event: StoreGet) -> Any:
        if not self.items:
            return _NO_ITEM
        if event.filter is None:
            return self.items.popleft()
        for i, item in enumerate(self.items):
            if event.filter(item):
                del self.items[i]
                return item
        return _NO_ITEM

    def _serve_getters(self) -> None:
        getters = self._getters
        items = self.items
        # Fast path: FIFO getters with no filter (every RPC queue is
        # one).  Serving the head getter here is exactly what the
        # general scan below would do on its first hit; dropping
        # already-triggered heads instead of skipping them is
        # observationally identical (they can never be served).
        while getters:
            getter = getters[0]
            if getter._value is not PENDING:
                getters.popleft()
                continue
            if getter.filter is None:
                if not items:
                    return
                getters.popleft()
                # Inlined getter.succeed(items.popleft()).
                getter._ok = True
                getter._value = items.popleft()
                env = self.env
                env._eid += 1
                heappush(env._queue, (env._now, NORMAL, env._eid, getter))
                continue
            break
        else:
            return
        # Slow path: a filtered getter heads the queue — full scan with
        # restart after every successful serve, as FilterStore requires.
        served = True
        while served and getters:
            served = False
            for i, getter in enumerate(getters):
                if getter.triggered:
                    continue
                item = self._match(getter)
                if item is not _NO_ITEM:
                    del getters[i]
                    getter.succeed(item)
                    served = True
                    break

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._serve_getters()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} level={len(self.items)}/{self.capacity}>"


class FilterStore(Store):
    """Store whose ``get`` can select by predicate."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, filter)


#: Sentinel distinct from None (stores may hold None).
_NO_ITEM = object()
