"""Declarative fault plans: parse, validate, and describe fault events.

A plan is JSON of the shape::

    {
      "seed": 20130901,
      "events": [
        {"kind": "node_crash",   "at": 1300000, "node": "server"},
        {"kind": "node_restart", "at": 1600000, "node": "server"},
        {"kind": "partition",    "at": 700000, "until": 900000,
         "between": [["cn0", "cn1"], ["server"]]},
        {"kind": "packet_loss",  "at": 0, "until": 1500000,
         "rate": 0.03, "rto_us": 30000},
        {"kind": "corruption",   "at": 1700000, "until": 1900000, "rate": 0.05},
        {"kind": "qp_break",     "at": 450000, "node": "server"},
        {"kind": "ib_bootstrap_failure", "at": 0, "until": 200000, "rate": 1.0},
        {"kind": "slow_nic",     "at": 1000000, "until": 1200000,
         "node": "server", "factor": 8.0},
        {"kind": "slow_disk",    "at": 0, "node": "dn3", "factor": 4.0},
        {"kind": "abusive_tenant", "at": 0, "until": 2000000,
         "node": "t0", "factor": 50.0}
      ]
    }

Times are simulated microseconds, like everything else in the DES.
Validation happens at construction so a bad plan fails before any
simulation runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.simcore.rng import DEFAULT_SEED

#: Every fault kind the injector understands.
KINDS = frozenset(
    {
        "node_crash",
        "node_restart",
        "partition",
        "packet_loss",
        "corruption",
        "qp_break",
        "ib_bootstrap_failure",
        "slow_nic",
        "slow_disk",
        "abusive_tenant",
    }
)

#: Kinds that name a single node.
_NODE_KINDS = frozenset(
    {"node_crash", "node_restart", "slow_nic", "slow_disk", "abusive_tenant"}
)

#: Kinds whose 'factor' is a >= 1 intensity multiplier.
_FACTOR_KINDS = frozenset({"slow_nic", "slow_disk", "abusive_tenant"})

#: Kinds with a stochastic per-event rate in [0, 1].
_RATE_KINDS = frozenset({"packet_loss", "corruption", "ib_bootstrap_failure"})

#: Default retransmission penalty charged per lost wire chunk (usec):
#: Linux's TCP minimum RTO floor, the right order of magnitude for the
#: gigabit/IPoIB fabrics the paper measures.
DEFAULT_RTO_US = 200_000.0


@dataclass(frozen=True)
class FaultEvent:
    """One validated fault event of a plan."""

    kind: str
    at: float = 0.0
    until: Optional[float] = None
    node: Optional[str] = None
    between: Optional[Tuple[FrozenSet[str], FrozenSet[str]]] = None
    rate: float = 0.0
    factor: float = 1.0
    rto_us: float = DEFAULT_RTO_US

    def active(self, now: float) -> bool:
        """Whether a windowed event applies at simulated time ``now``."""
        if now < self.at:
            return False
        return self.until is None or now < self.until

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.until is not None:
            out["until"] = self.until
        if self.node is not None:
            out["node"] = self.node
        if self.between is not None:
            out["between"] = [sorted(self.between[0]), sorted(self.between[1])]
        if self.kind in _RATE_KINDS:
            out["rate"] = self.rate
        if self.kind == "packet_loss":
            out["rto_us"] = self.rto_us
        if self.kind in _FACTOR_KINDS:
            out["factor"] = self.factor
        return out


def _parse_event(index: int, payload: Dict[str, Any]) -> FaultEvent:
    where = f"events[{index}]"
    if not isinstance(payload, dict):
        raise ValueError(f"{where}: expected an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in KINDS:
        raise ValueError(
            f"{where}: unknown kind {kind!r} (expected one of {sorted(KINDS)})"
        )
    at = float(payload.get("at", payload.get("from", 0.0)))
    if at < 0:
        raise ValueError(f"{where}: 'at' must be >= 0, got {at}")
    until = payload.get("until")
    if until is not None:
        until = float(until)
        if until <= at:
            raise ValueError(f"{where}: 'until' ({until}) must be > 'at' ({at})")
    node = payload.get("node")
    if kind in _NODE_KINDS and not node:
        raise ValueError(f"{where}: {kind} requires a 'node'")
    between = None
    if kind == "partition":
        raw = payload.get("between")
        if (
            not isinstance(raw, (list, tuple))
            or len(raw) != 2
            or not all(isinstance(side, (list, tuple)) and side for side in raw)
        ):
            raise ValueError(
                f"{where}: partition requires 'between': [[nodes...], [nodes...]]"
            )
        between = (frozenset(map(str, raw[0])), frozenset(map(str, raw[1])))
        if between[0] & between[1]:
            raise ValueError(
                f"{where}: partition sides overlap: {sorted(between[0] & between[1])}"
            )
    rate = float(payload.get("rate", 0.0))
    if kind in _RATE_KINDS and not 0.0 <= rate <= 1.0:
        raise ValueError(f"{where}: 'rate' must be in [0, 1], got {rate}")
    factor = float(payload.get("factor", 1.0))
    if kind in _FACTOR_KINDS and factor < 1.0:
        raise ValueError(f"{where}: 'factor' must be >= 1, got {factor}")
    rto_us = float(payload.get("rto_us", DEFAULT_RTO_US))
    if rto_us < 0:
        raise ValueError(f"{where}: 'rto_us' must be >= 0, got {rto_us}")
    return FaultEvent(
        kind=kind,
        at=at,
        until=until,
        node=str(node) if node is not None else None,
        between=between,
        rate=rate,
        factor=factor,
        rto_us=rto_us,
    )


@dataclass(frozen=True)
class FaultPlan:
    """A validated, immutable fault schedule."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = DEFAULT_SEED
    label: str = ""
    #: free-form plan description carried through from the JSON.
    note: str = field(default="", compare=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], label: str = "") -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, list):
            raise ValueError("'events' must be a list")
        events = tuple(
            _parse_event(i, event) for i, event in enumerate(raw_events)
        )
        return cls(
            events=events,
            seed=int(payload.get("seed", DEFAULT_SEED)),
            label=label or str(payload.get("label", "")),
            note=str(payload.get("note", "")),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls.from_dict(payload, label=path)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def kinds(self) -> List[str]:
        return sorted({event.kind for event in self.events})

    def __len__(self) -> int:
        return len(self.events)
