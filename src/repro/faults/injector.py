"""Per-fabric fault injection: schedules a FaultPlan as sim processes.

One :class:`FabricFaults` is attached per :class:`~repro.net.fabric.Fabric`
(see :mod:`repro.faults.runtime`).  Timed events (crash, restart,
partition on/off, QP break, degradation factors) are armed as ordinary
processes on the fabric's clock; stochastic rules (packet loss,
corruption, endpoint-bootstrap failure) are consulted by the transports
at the injection points:

* :meth:`wait_transferable` / :meth:`deliverable` gate
  ``Fabric._transfer_proc`` — partitions blackhole the wire (transfers
  park until heal), crashed endpoints drop in flight;
* :meth:`loss_delay` / :meth:`corrupts` are drawn per wire chunk by
  ``SimSocket._tx_loop`` — loss charges a retransmission penalty,
  corruption resets the connection (a checksum-failure RST);
* :meth:`ib_bootstrap_fails` is drawn by ``IBConnection.setup`` during
  the endpoint exchange;
* :meth:`nic_factor` / :meth:`disk_factor` scale NIC serialization and
  DataNode disk costs.

Every draw comes from a dedicated :class:`repro.simcore.rng.RngRegistry`
stream derived from the plan seed (rule SIM007): two runs of the same
plan against the same workload produce bit-identical schedules.

A node crash is modeled at the network boundary — listeners are
stashed, established sockets reset, QPs broken — which is exactly what
a peer can observe of a crashed machine; a restart re-registers the
stashed listeners so the (still-running) server processes resume
serving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.simcore.rng import RngRegistry, stable_seed


class FabricFaults:
    """Armed fault state + injection predicates for one fabric."""

    def __init__(self, fabric, plan: FaultPlan):
        self.fabric = fabric
        self.env = fabric.env
        self.plan = plan
        self.rng = RngRegistry(stable_seed(plan.seed, "faults"))
        #: names of currently-crashed nodes.
        self.down: set = set()
        #: active partitions: (side_a, side_b) frozensets.
        self.partitions: List[Tuple[frozenset, frozenset]] = []
        #: node name -> active degradation factor.
        self.nic_factors: Dict[str, float] = {}
        self.disk_factors: Dict[str, float] = {}
        #: tenant node -> load-amplification factor (abusive_tenant):
        #: consulted by multi-tenant workloads (e.g. the qos experiment)
        #: to scale a hostile client's issue rate.
        self.abusive_factors: Dict[str, float] = {}
        #: (event index, FaultEvent) for the stochastic rules; the index
        #: names each rule's RNG stream so rules draw independently.
        self.loss_rules: List[Tuple[int, FaultEvent]] = []
        self.corruption_rules: List[Tuple[int, FaultEvent]] = []
        self.bootstrap_rules: List[Tuple[int, FaultEvent]] = []
        #: live transport objects, registered at construction time so
        #: crash/qp_break events can reach them.
        self.sockets: List[object] = []
        self.qps: List[object] = []
        #: listeners removed by a crash, keyed by node name, restored on
        #: restart: {node: {(node, port): listener}}.
        self._stashed: Dict[str, Dict[tuple, object]] = {}
        #: fires (and is replaced) whenever reachability changes, waking
        #: transfers parked behind a partition.
        self._epoch = self.env.event()
        #: (sim time, kind, detail) of every injected fault, plus count.
        self.log: List[Tuple[float, str, str]] = []
        self.injected = 0
        for index, event in enumerate(plan.events):
            self._arm(index, event)

    # -- plan arming -------------------------------------------------------
    def _arm(self, index: int, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "node_crash":
            self._at(event.at, lambda e=event: self._crash(e.node))
        elif kind == "node_restart":
            self._at(event.at, lambda e=event: self._restart(e.node))
        elif kind == "partition":
            self._at(event.at, lambda e=event: self._partition_on(e.between))
            if event.until is not None:
                self._at(event.until, lambda e=event: self._partition_off(e.between))
        elif kind == "qp_break":
            self._at(event.at, lambda e=event: self._break_qps(e.node))
        elif kind == "slow_nic":
            self._at(event.at, lambda e=event: self._set_factor(
                self.nic_factors, e.node, e.factor, "slow_nic"))
            if event.until is not None:
                self._at(event.until, lambda e=event: self._clear_factor(
                    self.nic_factors, e.node, "slow_nic"))
        elif kind == "slow_disk":
            self._at(event.at, lambda e=event: self._set_factor(
                self.disk_factors, e.node, e.factor, "slow_disk"))
            if event.until is not None:
                self._at(event.until, lambda e=event: self._clear_factor(
                    self.disk_factors, e.node, "slow_disk"))
        elif kind == "abusive_tenant":
            self._at(event.at, lambda e=event: self._set_factor(
                self.abusive_factors, e.node, e.factor, "abusive_tenant"))
            if event.until is not None:
                self._at(event.until, lambda e=event: self._clear_factor(
                    self.abusive_factors, e.node, "abusive_tenant"))
        elif kind == "packet_loss":
            self.loss_rules.append((index, event))
        elif kind == "corruption":
            self.corruption_rules.append((index, event))
        elif kind == "ib_bootstrap_failure":
            self.bootstrap_rules.append((index, event))

    def _at(self, when: float, action) -> None:
        """Run ``action`` at simulated time ``when`` via a sim process."""

        def proc():
            yield self.env.timeout(max(0.0, when - self.env.now))
            action()

        self._scheduler = self.env.process(proc(), name="fault-at")

    def _note(self, kind: str, detail: str) -> None:
        self.injected += 1
        self.log.append((self.env.now, kind, detail))
        self.fabric.metrics.counter("faults.injected", kind=kind).add()

    def _bump_epoch(self) -> None:
        """Wake everything parked on a reachability change."""
        fired, self._epoch = self._epoch, self.env.event()
        fired.succeed()

    # -- transport registration (called at construction time) -------------
    def register_socket(self, sock) -> None:
        self.sockets.append(sock)

    def register_qp(self, qp) -> None:
        self.qps.append(qp)

    # -- timed actions -----------------------------------------------------
    def _crash(self, node: str) -> None:
        if node in self.down:
            return
        self.down.add(node)
        stash = self._stashed.setdefault(node, {})
        for key, listener in list(self.fabric.listeners.items()):
            if key[0] == node:
                stash[key] = listener
                del self.fabric.listeners[key]
        # A crashed machine's TCP peers see a reset; established QPs
        # error out on both ends.
        self.sockets = [s for s in self.sockets if not s.closed]
        for sock in list(self.sockets):
            if sock.local.name == node or sock.remote.name == node:
                sock.close()
        self.qps = [q for q in self.qps if not (q.closed or q.broken)]
        for qp in list(self.qps):
            if qp.local.node.name == node or qp.remote.node.name == node:
                qp.break_qp(f"node {node} crashed")
        self._note("node_crash", node)
        self._bump_epoch()

    def _restart(self, node: str) -> None:
        if node not in self.down:
            return
        self.down.discard(node)
        for key, listener in self._stashed.pop(node, {}).items():
            self.fabric.listeners.setdefault(key, listener)
        self._note("node_restart", node)
        self._bump_epoch()

    def _partition_on(self, pair) -> None:
        self.partitions.append(pair)
        self._note("partition", f"{sorted(pair[0])} | {sorted(pair[1])}")
        self._bump_epoch()

    def _partition_off(self, pair) -> None:
        if pair in self.partitions:
            self.partitions.remove(pair)
        self._note("partition_heal", f"{sorted(pair[0])} | {sorted(pair[1])}")
        self._bump_epoch()

    def _break_qps(self, node: Optional[str]) -> None:
        self.qps = [q for q in self.qps if not (q.closed or q.broken)]
        broken = 0
        for qp in list(self.qps):
            if node is not None and node not in (
                qp.local.node.name, qp.remote.node.name
            ):
                continue
            qp.break_qp("injected qp_break")
            broken += 1
        self._note("qp_break", f"{node or '*'}: {broken} qp(s)")

    def _set_factor(self, table, node, factor, kind) -> None:
        table[node] = factor
        self._note(kind, f"{node} x{factor:g}")

    def _clear_factor(self, table, node, kind) -> None:
        table.pop(node, None)
        self._note(f"{kind}_end", node)

    # -- reachability ------------------------------------------------------
    def _partitioned(self, a: str, b: str) -> bool:
        for side_a, side_b in self.partitions:
            if (a in side_a and b in side_b) or (a in side_b and b in side_a):
                return True
        return False

    def blocked(self, a: str, b: str) -> bool:
        """No traffic can start between nodes ``a`` and ``b`` right now."""
        return a in self.down or b in self.down or self._partitioned(a, b)

    def wait_transferable(self, src, dst):
        """Generator: park while src->dst is partitioned; False if a
        crashed endpoint means the bytes are simply lost."""
        while True:
            if src.name in self.down or dst.name in self.down:
                return False
            if not self._partitioned(src.name, dst.name):
                return True
            yield self._epoch

    def deliverable(self, src, dst) -> bool:
        """Post-transfer delivery check: data sent to a node that died
        mid-flight is gone."""
        return src.name not in self.down and dst.name not in self.down

    # -- stochastic draws --------------------------------------------------
    def _matches(self, event: FaultEvent, a: str, b: str) -> bool:
        if not event.active(self.env.now):
            return False
        return event.node is None or event.node in (a, b)

    def loss_delay(self, src: str, dst: str) -> float:
        """Retransmission penalty (usec) if this wire chunk is lost."""
        for index, event in self.loss_rules:
            if self._matches(event, src, dst):
                if self.rng.stream(f"loss.{index}").random() < event.rate:
                    self._note("packet_loss", f"{src}->{dst}")
                    return event.rto_us
        return 0.0

    def corrupts(self, src: str, dst: str) -> bool:
        """Whether this wire chunk arrives corrupted (connection reset)."""
        for index, event in self.corruption_rules:
            if self._matches(event, src, dst):
                if self.rng.stream(f"corrupt.{index}").random() < event.rate:
                    self._note("corruption", f"{src}->{dst}")
                    return True
        return False

    def ib_bootstrap_fails(self, client: str, server: str) -> bool:
        """Whether this endpoint exchange fails (drawn once per attempt)."""
        for index, event in self.bootstrap_rules:
            if self._matches(event, client, server):
                if self.rng.stream(f"bootstrap.{index}").random() < event.rate:
                    self._note("ib_bootstrap_failure", f"{client}->{server}")
                    return True
        return False

    # -- degradation factors ----------------------------------------------
    def nic_factor(self, src: str, dst: str) -> float:
        return max(self.nic_factors.get(src, 1.0), self.nic_factors.get(dst, 1.0))

    def disk_factor(self, node: str) -> float:
        return self.disk_factors.get(node, 1.0)

    def abusive_factor(self, node: str) -> float:
        return self.abusive_factors.get(node, 1.0)
