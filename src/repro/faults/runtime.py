"""Process-wide fault-session plumbing (the ``--faults`` flag).

Experiments construct their :class:`~repro.net.fabric.Fabric` objects
internally, so — like :mod:`repro.obs.runtime` and the sim-sanitizer —
the fault plane is armed process-wide::

    from repro.faults import FaultPlan, runtime as faults_runtime

    plan = FaultPlan.from_file("plan.json")
    with faults_runtime.session(plan):
        chaos.run()

Every fabric built while a session is installed gets a
:class:`~repro.faults.injector.FabricFaults` attached (``fabric.faults``);
with no session installed ``fabric.faults`` is ``None`` and every hook
in the transports is a single ``is None`` branch.

:func:`suppressed` temporarily masks the installed session so a chaos
experiment can run its clean baseline on the same process without
faults, then compare.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.faults.injector import FabricFaults
from repro.faults.plan import FaultPlan


class FaultSession:
    """One armed fault plan, attached to every fabric built under it."""

    def __init__(self, plan: FaultPlan, label: str = ""):
        self.plan = plan
        self.label = label or plan.label
        self.fabrics: List[FabricFaults] = []

    def attach(self, fabric) -> FabricFaults:
        """Called by ``Fabric.__init__``: arm the plan on this fabric."""
        faults = FabricFaults(fabric, self.plan)
        self.fabrics.append(faults)
        return faults

    def injected_total(self) -> int:
        return sum(faults.injected for faults in self.fabrics)


_current: Optional[FaultSession] = None


def current() -> Optional[FaultSession]:
    """The active fault session, if any (consulted by Fabric.__init__)."""
    return _current


def install(session: FaultSession) -> None:
    global _current
    if _current is not None:
        raise RuntimeError("a FaultSession is already installed")
    _current = session


def uninstall() -> None:
    global _current
    _current = None


@contextmanager
def session(plan: FaultPlan, label: str = ""):
    """Scope a :class:`FaultSession` around a block of simulation runs."""
    sess = FaultSession(plan, label=label)
    install(sess)
    try:
        yield sess
    finally:
        uninstall()


@contextmanager
def suppressed():
    """Temporarily mask the installed session (clean-baseline runs)."""
    global _current
    saved, _current = _current, None
    try:
        yield
    finally:
        _current = saved
