"""Deterministic fault-injection plane for the DES substrate.

A :class:`~repro.faults.plan.FaultPlan` is a declarative list of timed
fault events — node crash/restart, link partitions, per-transfer packet
loss and corruption, QP breaks, endpoint-bootstrap failures, slow-NIC
and slow-disk degradation factors.  A plan is armed process-wide via a
:class:`~repro.faults.runtime.FaultSession` (the ``--faults plan.json``
flag on the experiments CLI); every :class:`~repro.net.fabric.Fabric`
built while the session is installed attaches a
:class:`~repro.faults.injector.FabricFaults` that schedules the plan as
ordinary sim processes on that fabric's clock.

With no session installed every hook is a single ``is None`` branch —
the plane adds no simulated-clock events and no RNG draws, so reported
numbers are bit-identical with and without it (the same zero-cost-when-
off contract as :mod:`repro.obs` and the sim-sanitizer).  All stochastic
injectors (loss, corruption, bootstrap failure) draw from dedicated
:class:`repro.simcore.rng.RngRegistry` streams seeded from the plan, so
chaos runs are bit-reproducible across interpreters (rule SIM007).
"""

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.runtime import FaultSession

__all__ = ["FaultEvent", "FaultPlan", "FaultSession"]
