"""HDFS RPC protocols and their Writable message types.

The method set matches the calls Table I profiles
(``hdfs.ClientProtocol``: getFileInfo, mkdirs, create, renewLease,
addBlock, complete, getListing, rename, delete, getBlockLocations) plus
the DataNode side (sendHeartbeat, blockReceived, blockReport,
register).  The Writable layouts are faithful enough that message sizes
land in the same size classes the paper observes (Fig. 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.io.data_input import DataInput
from repro.io.data_output import DataOutput
from repro.io.writable import Writable, writable_factory
from repro.rpc.protocol import RpcProtocol


@writable_factory
class BlockWritable(Writable):
    """An HDFS block: id, byte length, generation stamp."""

    def __init__(self, block_id: int = 0, num_bytes: int = 0, generation: int = 0):
        self.block_id = block_id
        self.num_bytes = num_bytes
        self.generation = generation

    def write(self, out: DataOutput) -> None:
        out.write_long(self.block_id)
        out.write_long(self.num_bytes)
        out.write_long(self.generation)

    def read_fields(self, inp: DataInput) -> None:
        self.block_id = inp.read_long()
        self.num_bytes = inp.read_long()
        self.generation = inp.read_long()


@writable_factory
class DatanodeInfoWritable(Writable):
    """Identity + usage summary of one DataNode."""

    def __init__(self, name: str = "", capacity: int = 0, remaining: int = 0):
        self.name = name
        self.capacity = capacity
        self.remaining = remaining

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.name)
        out.write_long(self.capacity)
        out.write_long(self.remaining)

    def read_fields(self, inp: DataInput) -> None:
        self.name = inp.read_utf()
        self.capacity = inp.read_long()
        self.remaining = inp.read_long()


@writable_factory
class LocatedBlockWritable(Writable):
    """A block plus its replica locations — ``addBlock``'s return."""

    def __init__(
        self,
        block: Optional[BlockWritable] = None,
        locations: Optional[List[DatanodeInfoWritable]] = None,
    ):
        self.block = block or BlockWritable()
        self.locations = list(locations or [])

    def write(self, out: DataOutput) -> None:
        self.block.write(out)
        out.write_int(len(self.locations))
        for location in self.locations:
            location.write(out)

    def read_fields(self, inp: DataInput) -> None:
        self.block = BlockWritable()
        self.block.read_fields(inp)
        count = inp.read_int()
        self.locations = []
        for _ in range(count):
            info = DatanodeInfoWritable()
            info.read_fields(inp)
            self.locations.append(info)


@writable_factory
class LocatedBlocksWritable(Writable):
    """All blocks of a file with locations — ``getBlockLocations``."""

    def __init__(self, file_length: int = 0, blocks: Optional[List[LocatedBlockWritable]] = None):
        self.file_length = file_length
        self.blocks = list(blocks or [])

    def write(self, out: DataOutput) -> None:
        out.write_long(self.file_length)
        out.write_int(len(self.blocks))
        for block in self.blocks:
            block.write(out)

    def read_fields(self, inp: DataInput) -> None:
        self.file_length = inp.read_long()
        count = inp.read_int()
        self.blocks = []
        for _ in range(count):
            block = LocatedBlockWritable()
            block.read_fields(inp)
            self.blocks.append(block)


@writable_factory
class FileStatusWritable(Writable):
    """``getFileInfo``'s return: path metadata."""

    def __init__(
        self,
        path: str = "",
        length: int = 0,
        is_dir: bool = False,
        replication: int = 0,
        block_size: int = 0,
        modification_time: int = 0,
    ):
        self.path = path
        self.length = length
        self.is_dir = is_dir
        self.replication = replication
        self.block_size = block_size
        self.modification_time = modification_time

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.path)
        out.write_long(self.length)
        out.write_boolean(self.is_dir)
        out.write_short(self.replication)
        out.write_long(self.block_size)
        out.write_long(self.modification_time)

    def read_fields(self, inp: DataInput) -> None:
        self.path = inp.read_utf()
        self.length = inp.read_long()
        self.is_dir = inp.read_boolean()
        self.replication = inp.read_short()
        self.block_size = inp.read_long()
        self.modification_time = inp.read_long()


@writable_factory
class HeartbeatWritable(Writable):
    """DataNode heartbeat payload (~the paper's steady ~430-byte kin)."""

    def __init__(
        self,
        name: str = "",
        capacity: int = 0,
        dfs_used: int = 0,
        remaining: int = 0,
        xceiver_count: int = 0,
    ):
        self.name = name
        self.capacity = capacity
        self.dfs_used = dfs_used
        self.remaining = remaining
        self.xceiver_count = xceiver_count

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.name)
        out.write_long(self.capacity)
        out.write_long(self.dfs_used)
        out.write_long(self.remaining)
        out.write_int(self.xceiver_count)

    def read_fields(self, inp: DataInput) -> None:
        self.name = inp.read_utf()
        self.capacity = inp.read_long()
        self.dfs_used = inp.read_long()
        self.remaining = inp.read_long()
        self.xceiver_count = inp.read_int()


@writable_factory
class BlockReportWritable(Writable):
    """Periodic full block listing from a DataNode (a *large* message)."""

    def __init__(self, name: str = "", block_ids: Optional[List[int]] = None):
        self.name = name
        self.block_ids = list(block_ids or [])

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.name)
        out.write_int(len(self.block_ids))
        for block_id in self.block_ids:
            out.write_long(block_id)

    def read_fields(self, inp: DataInput) -> None:
        self.name = inp.read_utf()
        count = inp.read_int()
        self.block_ids = [inp.read_long() for _ in range(count)]


class ClientProtocol(RpcProtocol):
    """Client <-> NameNode metadata operations (Table I's hdfs rows)."""

    PROTOCOL_NAME = "hdfs.ClientProtocol"
    VERSION = 41

    def getFileInfo(self, path):
        raise NotImplementedError

    def mkdirs(self, path):
        raise NotImplementedError

    def create(self, path, replication, block_size):
        raise NotImplementedError

    def renewLease(self, client_name):
        raise NotImplementedError

    def addBlock(self, path, client_name):
        raise NotImplementedError

    def complete(self, path, client_name):
        raise NotImplementedError

    def getListing(self, path):
        raise NotImplementedError

    def rename(self, src, dst):
        raise NotImplementedError

    def delete(self, path):
        raise NotImplementedError

    def getBlockLocations(self, path, offset, length):
        raise NotImplementedError


class DatanodeProtocol(RpcProtocol):
    """DataNode <-> NameNode control traffic."""

    PROTOCOL_NAME = "hdfs.DatanodeProtocol"
    VERSION = 25

    def register(self, info):
        raise NotImplementedError

    def sendHeartbeat(self, heartbeat):
        raise NotImplementedError

    def blockReceived(self, name, block):
        raise NotImplementedError

    def blockReport(self, report):
        raise NotImplementedError
