"""The DataNode: heartbeats, block storage, and the write/read data plane.

The data plane runs in one of two modes:

* ``socket`` — the stock HDFS streaming path: per-64KB-write syscalls,
  kernel<->user copies on each hop, over whichever fabric the cluster
  uses (1GigE / IPoIB);
* ``rdma`` — the HDFSoIB design of the paper's reference [6]: chunks
  move between registered buffers with verbs posts, no per-byte host
  CPU, over the IB RDMA path.

Blocks stream through the replication pipeline in 8 MB chunks so a
64 MB block overlaps network hops and disk writes realistically without
simulating every 64 KB packet.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from repro.calibration import IB_RDMA, NetworkSpec
from repro.config import Configuration
from repro.hdfs.protocol import (
    BlockReportWritable,
    BlockWritable,
    DatanodeInfoWritable,
    DatanodeProtocol,
    HeartbeatWritable,
)
from repro.io.writables import Text
from repro.net.fabric import Fabric, Node
from repro.net.sockets import SYSCALL_CHUNK, SocketAddress
from repro.rpc.call import RemoteException
from repro.rpc.engine import RPC
from repro.rpc.metrics import RpcMetrics
from repro.simcore import Resource, Store
from repro.simcore.rng import Random, named_stream

#: Pipeline streaming granularity (aggregates HDFS's 64 KB packets).
PIPELINE_CHUNK = 8 * 1024 * 1024

#: Retry cadence for control-plane calls while the NameNode is down.
NN_RETRY_US = 1_000_000.0


class _FanoutNameNodeProxy:
    """DatanodeProtocol stub that reports to *every* NameNode of an HA pair.

    The standby builds its DataNode registry and replica map from the
    same registrations/heartbeats/blockReceived stream as the active
    (it journals namespace edits only), so DataNodes fan every control
    call out to both members.  Delivery is sequential and best-effort
    per member; the fanned-out call succeeds iff at least one member
    acknowledged — a crashed or still-restarting peer never blocks the
    reporting path.
    """

    def __init__(self, env, proxies):
        self._env = env
        self._proxies = list(proxies)

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)
        if not callable(getattr(DatanodeProtocol, method, None)):
            raise AttributeError(
                f"{DatanodeProtocol.protocol_name()} has no RPC method {method!r}"
            )

        def invoke(*params):
            return self._env.process(
                self._fanout_proc(method, params), name=f"nn-fanout:{method}"
            )

        invoke.__name__ = method
        self.__dict__[method] = invoke
        return invoke

    def _fanout_proc(self, method: str, params):
        value = None
        delivered = 0
        failure = None
        for proxy in self._proxies:
            try:
                value = yield getattr(proxy, method)(*params)
                delivered += 1
            except (RemoteException, ConnectionError) as exc:
                failure = exc
        if delivered == 0:
            raise failure
        return value


class DataNode:
    """One DataNode daemon: storage, pipeline stage, NN control traffic."""

    def __init__(
        self,
        fabric: Fabric,
        node: Node,
        namenode_address: Union[SocketAddress, Sequence[SocketAddress]],
        conf: Optional[Configuration] = None,
        rpc_spec: Optional[NetworkSpec] = None,
        data_transport: str = "socket",
        data_spec: Optional[NetworkSpec] = None,
        metrics: Optional[RpcMetrics] = None,
        rng: Optional[Random] = None,
        heartbeats: bool = True,
    ):
        if data_transport not in ("socket", "rdma"):
            raise ValueError(f"unknown data transport {data_transport!r}")
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.name = node.name
        self.conf = conf or Configuration()
        self.model = fabric.model
        self.rng = rng or named_stream(f"datanode:{node.name}")
        self.data_transport = data_transport
        self.data_spec = data_spec or (IB_RDMA if data_transport == "rdma" else rpc_spec)
        assert rpc_spec is not None, "DataNode needs the cluster's RPC network spec"
        self.rpc_client = RPC.get_client(
            fabric, node, rpc_spec, conf=self.conf, metrics=metrics,
            name=f"dn-rpc@{node.name}",
        )
        if isinstance(namenode_address, SocketAddress):
            addresses = [namenode_address]
        else:
            addresses = list(namenode_address)
        if len(addresses) > 1:
            self.nn = _FanoutNameNodeProxy(
                self.env,
                [
                    RPC.get_proxy(DatanodeProtocol, address, self.rpc_client)
                    for address in addresses
                ],
            )
        else:
            self.nn = RPC.get_proxy(DatanodeProtocol, addresses[0], self.rpc_client)
        #: local block store: block_id -> byte length
        self.blocks: Dict[int, int] = {}
        #: one disk arm; all block IO serializes here
        self.disk = Resource(self.env, capacity=1)
        self.bytes_written = 0
        self.bytes_read = 0
        self._registered = self.env.event()
        self.env.process(self._startup(heartbeats), name=f"dn-start:{self.name}")

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _startup(self, heartbeats: bool):
        while True:
            try:
                yield self.nn.register(
                    DatanodeInfoWritable(self.name, 1 << 40, 1 << 40)
                )
                break
            except (RemoteException, ConnectionError):
                # NameNode down at boot: keep knocking — an unhandled
                # failure here would crash the whole simulation.
                yield self.env.timeout(NN_RETRY_US)
        self._registered.succeed()
        if heartbeats:
            self.env.process(self._heartbeat_loop(), name=f"dn-hb:{self.name}")

    def _heartbeat_loop(self):
        interval = self.conf.get_float("dfs.heartbeat.interval")
        # desynchronize the fleet
        yield self.env.timeout(self.rng.uniform(0, interval))
        while True:
            try:
                yield self.nn.sendHeartbeat(
                    HeartbeatWritable(
                        self.name, 1 << 40, self.bytes_written, 1 << 40, 0
                    )
                )
            except (RemoteException, ConnectionError):
                # Crashed/partitioned NameNode: hold the cadence and try
                # again next beat, so a restarted NameNode sees this
                # DataNode's liveness (and gauges) recover by itself.
                pass
            yield self.env.timeout(interval)

    def send_block_report(self):
        """One full block report (a large RPC message)."""
        return self.nn.blockReport(
            BlockReportWritable(self.name, sorted(self.blocks))
        )

    # ------------------------------------------------------------------
    # data plane: write pipeline stage
    # ------------------------------------------------------------------
    def _chunk_cost_us(self, nbytes: int, sending: bool) -> float:
        """Host CPU to push/accept one chunk on this transport."""
        sw = self.model.software
        mem = self.model.memory
        if self.data_transport == "rdma":
            return sw.jni_crossing_us + (
                sw.verbs_post_us if sending else sw.cq_poll_us
            )
        syscalls = max(1, math.ceil(nbytes / SYSCALL_CHUNK))
        return (
            syscalls * (sw.socket_syscall_us + self.data_spec.host_overhead_us / 8)
            + nbytes * self.data_spec.cpu_per_byte_us
            + mem.copy_us(nbytes)
        )

    def ingest_block(
        self,
        block: BlockWritable,
        nbytes: int,
        chunks_in: Store,
        downstream: List["DataNode"],
    ):
        """Process: receive a replica, write it to disk, forward it.

        Returns (via the Process value) when this stage *and all
        downstream stages* have durably written the block.  Afterwards,
        asynchronously reports ``blockReceived`` to the NameNode — the
        report that the client's next ``addBlock`` races against.
        """
        next_q: Optional[Store] = None
        next_proc = None
        if downstream:
            next_q = Store(self.env)
            next_proc = self.env.process(
                downstream[0].ingest_block(block, nbytes, next_q, downstream[1:]),
                name=f"ingest:{downstream[0].name}",
            )
        disk_writes = []
        received = 0
        first_chunk = True
        while received < nbytes:
            chunk = yield chunks_in.get()
            received += chunk
            yield self.env.timeout(self._chunk_cost_us(chunk, sending=False))
            if downstream:
                yield self.env.timeout(self._chunk_cost_us(chunk, sending=True))
                yield self.fabric.transfer(
                    self.node, downstream[0].node, chunk, self.data_spec
                )
                yield next_q.put(chunk)
            disk_writes.append(
                self.env.process(
                    self._disk_write(chunk, seek=first_chunk),
                    name=f"dwrite:{self.name}",
                )
            )
            first_chunk = False
        for write in disk_writes:
            yield write
        self.blocks[block.block_id] = nbytes
        self.bytes_written += nbytes
        # blockReceived goes to the NameNode as soon as the *local*
        # replica is durable (0.20.2 semantics) — concurrently with the
        # ack still propagating up the pipeline.  The client's next
        # addBlock races these reports.
        self.env.process(self._report_received(block, nbytes), name=f"brcv:{self.name}")
        if next_proc is not None:
            yield next_proc

    def _disk_write(self, nbytes: int, seek: bool):
        disk_spec = self.model.disk
        with self.disk.request() as grant:
            yield grant
            cost = nbytes / disk_spec.seq_write + (disk_spec.seek_us if seek else 0.0)
            ff = self.fabric.faults
            if ff is not None:
                cost *= ff.disk_factor(self.name)
            yield self.env.timeout(cost)

    def _report_received(self, block: BlockWritable, nbytes: int):
        # post-block finalization (CRC/meta flush) before reporting
        yield self.env.timeout(self.rng.uniform(150.0, 700.0))
        while True:
            try:
                yield self.nn.blockReceived(
                    Text(self.name), BlockWritable(block.block_id, nbytes, 0)
                )
                return
            except (RemoteException, ConnectionError):
                # The report is load-bearing (addBlock/complete wait on
                # replica counts): retry until some NameNode takes it.
                yield self.env.timeout(NN_RETRY_US)

    # ------------------------------------------------------------------
    # data plane: reads
    # ------------------------------------------------------------------
    def read_block(self, block_id: int, dest: Node):
        """Process: stream a stored block to ``dest`` (loopback if local)."""
        if block_id not in self.blocks:
            raise KeyError(f"{self.name} has no block {block_id}")
        nbytes = self.blocks[block_id]
        return self.env.process(self._read_proc(block_id, nbytes, dest))

    def _read_proc(self, block_id: int, nbytes: int, dest: Node):
        disk_spec = self.model.disk
        remaining = nbytes
        first = True
        while remaining > 0:
            chunk = min(PIPELINE_CHUNK, remaining)
            with self.disk.request() as grant:
                yield grant
                yield self.env.timeout(
                    chunk / disk_spec.seq_read + (disk_spec.seek_us if first else 0.0)
                )
            first = False
            if dest is not self.node:
                yield self.env.timeout(self._chunk_cost_us(chunk, sending=True))
                yield self.fabric.transfer(self.node, dest, chunk, self.data_spec)
            remaining -= chunk
        self.bytes_read += nbytes
        return nbytes
