"""HDFS substrate: NameNode, DataNodes, DFSClient over the simulated fabric.

Models Hadoop 0.20.2 HDFS far enough to reproduce the paper's Fig. 7
integrated evaluation and to serve as the storage substrate for
MapReduce (Fig. 6) and HBase (Fig. 8):

* metadata plane — every ``ClientProtocol``/``DatanodeProtocol`` call
  goes through :mod:`repro.rpc`, so the engine choice (sockets vs
  RPCoIB) affects exactly what it affected in the paper;
* data plane — 3-replica write pipelines and block reads, over either
  socket streaming or RDMA (the HDFSoIB design of reference [6]);
* the real 0.20.2 client-visible synchronization points that couple
  RPC latency to write latency: per-block ``addBlock`` with the
  ``NotReplicatedYetException`` retry/backoff race against the
  DataNodes' ``blockReceived`` reports, and ``complete()`` polling with
  400 ms sleeps.
"""

from repro.hdfs.protocol import (
    BlockWritable,
    ClientProtocol,
    DatanodeProtocol,
    FileStatusWritable,
    LocatedBlockWritable,
)
from repro.hdfs.namenode import NameNode, NotReplicatedYet
from repro.hdfs.datanode import DataNode
from repro.hdfs.client import DFSClient
from repro.hdfs.cluster import HdfsCluster

__all__ = [
    "BlockWritable",
    "ClientProtocol",
    "DataNode",
    "DatanodeProtocol",
    "DFSClient",
    "FileStatusWritable",
    "HdfsCluster",
    "LocatedBlockWritable",
    "NameNode",
    "NotReplicatedYet",
]
