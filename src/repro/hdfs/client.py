"""DFSClient: the client-side write/read paths with 0.20.2 semantics.

The write path carries the two RPC-latency amplifiers the paper's
Fig. 7 rides on:

* ``addBlock`` retry — when the NameNode has not yet processed the
  previous block's ``blockReceived``, it throws
  ``NotReplicatedYetException`` and the client sleeps (400 ms, then
  doubling) before retrying: a microsecond-scale race decided by RPC
  latency, paid in hundreds of milliseconds;
* ``complete()`` polling — the client spins on ``complete`` with 400 ms
  sleeps until all replicas are confirmed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.calibration import NetworkSpec
from repro.config import Configuration
from repro.hdfs.datanode import PIPELINE_CHUNK, DataNode
from repro.hdfs.protocol import ClientProtocol
from repro.io.writables import IntWritable, LongWritable, Text
from repro.net.fabric import Fabric, Node
from repro.net.sockets import SocketAddress
from repro.rpc.call import RemoteException
from repro.rpc.engine import RPC
from repro.rpc.failover import FailoverProxy
from repro.rpc.metrics import RpcMetrics
from repro.simcore import Store
from repro.simcore.rng import Random, named_stream

#: 0.20.2 DFSClient retry/poll sleep quantum.
RETRY_SLEEP_US = 400_000.0
#: Maximum addBlock retries before giving up (0.20.2: 5).
MAX_BLOCK_RETRIES = 8


class DFSClient:
    """One HDFS client (a JVM on some node)."""

    def __init__(
        self,
        fabric: Fabric,
        node: Node,
        namenode_address: Union[SocketAddress, Sequence[SocketAddress]],
        datanode_registry,
        conf: Optional[Configuration] = None,
        rpc_spec: Optional[NetworkSpec] = None,
        rng: Optional[Random] = None,
        metrics: Optional[RpcMetrics] = None,
        name: str = "",
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.conf = conf or Configuration()
        assert rpc_spec is not None, "DFSClient needs the cluster's RPC network spec"
        self.rng = rng or named_stream(f"dfsclient:{node.name}")
        self.name = name or f"dfsclient@{node.name}"
        #: callable: datanode name -> DataNode (the cluster's registry)
        self.datanode_registry = datanode_registry
        self.rpc_client = RPC.get_client(
            fabric, node, rpc_spec, conf=self.conf, metrics=metrics,
            name=self.name,
        )
        if isinstance(namenode_address, SocketAddress):
            addresses = [namenode_address]
        else:
            addresses = list(namenode_address)
        if len(addresses) > 1:
            # HA pair: sticky failover proxy.  The child RNG draw
            # happens only on this branch, so single-NameNode runs keep
            # their exact pre-HA random streams (golden schedules).
            self.namenode = FailoverProxy(
                self.rpc_client,
                addresses,
                ClientProtocol,
                rng=Random(self.rng.getrandbits(32)),
            )
        else:
            self.namenode = RPC.get_proxy(
                ClientProtocol, addresses[0], self.rpc_client
            )
        self.addblock_retries = 0
        self.complete_polls = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write_file(self, path: str, nbytes: int, replication: Optional[int] = None):
        """Process: create ``path`` and stream ``nbytes`` into it."""
        return self.env.process(
            self._write_proc(path, nbytes, replication), name=f"hdfswrite:{path}"
        )

    def _write_proc(self, path: str, nbytes: int, replication: Optional[int]):
        replication = replication or self.conf.get_int("dfs.replication")
        block_size = self.conf.get_int("dfs.block.size")
        yield self.namenode.create(
            Text(path), IntWritable(replication), LongWritable(block_size)
        )
        remaining = nbytes
        while remaining > 0:
            this_block = min(block_size, remaining)
            located = yield from self._add_block_with_retry(path)
            yield from self._write_block(located, this_block)
            remaining -= this_block
            # end-of-block client bookkeeping (block file close, ack
            # bookkeeping, next-stream setup) before addBlock — the
            # DataNodes' blockReceived reports usually win the race
            # against this window; they lose only on NameNode queueing
            # and jitter tails, which is where the RPC engine matters
            yield self.env.timeout(self.rng.uniform(400.0, 1200.0))
        yield from self._complete_with_polling(path)
        return nbytes

    def _add_block_with_retry(self, path: str):
        backoff = RETRY_SLEEP_US
        for _ in range(MAX_BLOCK_RETRIES):
            try:
                located = yield self.namenode.addBlock(Text(path), Text(self.node.name))
                return located
            except RemoteException as exc:
                if exc.class_name != "NotReplicatedYet":
                    raise
                self.addblock_retries += 1
                yield self.env.timeout(backoff)
                backoff *= 2
        raise RuntimeError(f"{path}: addBlock retries exhausted")

    def _write_block(self, located, nbytes: int):
        pipeline: List[DataNode] = [
            self.datanode_registry(info.name) for info in located.locations
        ]
        if not pipeline:
            raise RuntimeError("empty pipeline")
        first, rest = pipeline[0], pipeline[1:]
        chunks = Store(self.env)
        ingest = self.env.process(
            first.ingest_block(located.block, nbytes, chunks, rest),
            name=f"ingest:{first.name}",
        )
        remaining = nbytes
        while remaining > 0:
            chunk = min(PIPELINE_CHUNK, remaining)
            # client-side push cost on the data transport of DN1
            yield self.env.timeout(first._chunk_cost_us(chunk, sending=True))
            yield self.fabric.transfer(self.node, first.node, chunk, first.data_spec)
            yield chunks.put(chunk)
            remaining -= chunk
        yield ingest  # pipeline close ack
        # ack propagation back up the pipeline
        yield self.env.timeout(len(pipeline) * first.data_spec.latency_us)

    def _complete_with_polling(self, path: str):
        while True:
            self.complete_polls += 1
            done = yield self.namenode.complete(Text(path), Text(self.node.name))
            if done.value:
                return
            yield self.env.timeout(RETRY_SLEEP_US)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_file(self, path: str):
        """Process: read all of ``path``; value is bytes read."""
        return self.env.process(self._read_proc(path), name=f"hdfsread:{path}")

    def _read_proc(self, path: str):
        located = yield self.namenode.getBlockLocations(
            Text(path), LongWritable(0), LongWritable(1 << 62)
        )
        total = 0
        for block in located.blocks:
            replica_names = [info.name for info in block.locations]
            if not replica_names:
                raise RuntimeError(f"block {block.block.block_id} has no replicas")
            # prefer a node-local replica, like HDFS short-circuit reads
            chosen = next(
                (n for n in replica_names if n == self.node.name),
                self.rng.choice(replica_names),
            )
            datanode = self.datanode_registry(chosen)
            total += yield datanode.read_block(block.block.block_id, self.node)
        return total

    def read_span(self, path: str, offset: int, length: int):
        """Process: read ``length`` bytes of ``path`` from ``offset``
        (a map task reading its input split)."""
        return self.env.process(
            self._read_span_proc(path, offset, length), name=f"hdfsspan:{path}"
        )

    def _read_span_proc(self, path: str, offset: int, length: int):
        located = yield self.namenode.getBlockLocations(
            Text(path), LongWritable(offset), LongWritable(length)
        )
        total = 0
        for block in located.blocks:
            replica_names = [info.name for info in block.locations]
            if not replica_names:
                raise RuntimeError(f"block {block.block.block_id} has no replicas")
            chosen = next(
                (n for n in replica_names if n == self.node.name),
                self.rng.choice(replica_names),
            )
            datanode = self.datanode_registry(chosen)
            total += yield datanode.read_block(block.block.block_id, self.node)
            if total >= length:
                break
        return min(total, length)

    # ------------------------------------------------------------------
    # convenience metadata wrappers (used by MapReduce/HBase daemons)
    # ------------------------------------------------------------------
    def get_file_info(self, path: str):
        return self.namenode.getFileInfo(Text(path))

    def mkdirs(self, path: str):
        return self.namenode.mkdirs(Text(path))

    def delete(self, path: str):
        return self.namenode.delete(Text(path))

    def rename(self, src: str, dst: str):
        return self.namenode.rename(Text(src), Text(dst))
