"""The NameNode: FSNamesystem + its RPC service.

Implements the 0.20.2 semantics that matter for the paper's results:

* ``addBlock`` checks the *previous* block's replication and throws
  ``NotReplicatedYetException`` when no ``blockReceived`` has arrived
  yet — the client then backs off and retries.  This race between the
  client's next ``addBlock`` and the DataNodes' ``blockReceived``
  reports is how microsecond-scale RPC latency differences become
  100 ms-scale write-latency differences (Fig. 7).
* ``complete`` returns false until every block has a replica; the
  client polls it on a 400 ms sleep.
* mutating namespace operations pay an edit-log sync.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.calibration import NetworkSpec
from repro.config import Configuration
from repro.ha.journal import SharedJournal
from repro.ha.participant import HaParticipant, HAServiceProtocol
from repro.ha.state import HAState, HaStateTracker
from repro.io.writables import BooleanWritable, IntWritable, LongWritable, NullWritable, Text
from repro.io.writable import ObjectWritable
from repro.io.writables import ArrayWritable
from repro.hdfs.protocol import (
    BlockReportWritable,
    BlockWritable,
    ClientProtocol,
    DatanodeInfoWritable,
    DatanodeProtocol,
    FileStatusWritable,
    HeartbeatWritable,
    LocatedBlockWritable,
    LocatedBlocksWritable,
)
from repro.net.fabric import Fabric, Node
from repro.rpc.engine import RPC
from repro.rpc.metrics import RpcMetrics
from repro.simcore.rng import Random, named_stream


class NotReplicatedYet(RuntimeError):
    """0.20.2's NotReplicatedYetException: previous block has no replica."""


@dataclass
class BlockInfo:
    """Namesystem view of one block."""

    block_id: int
    num_bytes: int
    replicas: Set[str] = field(default_factory=set)


@dataclass
class INode:
    """One namespace entry (file or directory)."""

    path: str
    is_dir: bool = False
    replication: int = 3
    block_size: int = 64 * 1024 * 1024
    blocks: List[BlockInfo] = field(default_factory=list)
    under_construction: bool = False
    client_name: str = ""

    @property
    def length(self) -> int:
        return sum(b.num_bytes for b in self.blocks)


@dataclass
class DatanodeDescriptor:
    """Registry entry for a live DataNode."""

    name: str
    node: Node
    capacity: int = 1 << 40
    remaining: int = 1 << 40
    last_heartbeat_us: float = 0.0
    xceivers: int = 0


class NameNode(HaParticipant, ClientProtocol, DatanodeProtocol):
    """NameNode daemon: namespace, block map, DataNode registry.

    With ``journal`` set the NameNode is one member of an HA pair: it
    starts as a **standby** (rejecting every ClientProtocol call with a
    typed ``StandbyException``, while still absorbing DataNode
    registrations/heartbeats/block reports), tails the shared journal,
    and serves only after a :class:`~repro.ha.FailoverController` (or
    the cluster wiring, for the initial active) grants it the journal
    epoch and promotes it.  Without ``journal`` nothing changes — the
    single-NameNode paths are bit-identical to the non-HA build.
    """

    def __init__(
        self,
        fabric: Fabric,
        node: Node,
        port: int = 8020,
        conf: Optional[Configuration] = None,
        spec: Optional[NetworkSpec] = None,
        metrics: Optional[RpcMetrics] = None,
        rng: Optional[Random] = None,
        journal: Optional[SharedJournal] = None,
        ha_tracker: Optional[HaStateTracker] = None,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.conf = conf or Configuration()
        self.rng = rng or named_stream("namenode")
        self.metrics = metrics or RpcMetrics()
        assert spec is not None, "NameNode needs the cluster's RPC network spec"
        self.spec = spec
        self.namespace: Dict[str, INode] = {"/": INode("/", is_dir=True)}
        self.block_map: Dict[int, BlockInfo] = {}
        self.datanodes: Dict[str, DatanodeDescriptor] = {}
        self._block_ids = itertools.count(1_000_000)
        self.stats = {
            "addBlock": 0,
            "addBlock_retries_rejected": 0,
            "blockReceived": 0,
            "heartbeats": 0,
            "completes": 0,
            "completes_false": 0,
            "standby_rejected": 0,
        }
        #: blockReceived reports for blocks whose addBlock edit this
        #: (standby) member has not tailed yet; merged on replay.
        self._pending_replicas: Dict[int, List[Tuple[str, int]]] = {}
        protocols = [ClientProtocol, DatanodeProtocol]
        if journal is not None:
            protocols.append(HAServiceProtocol)
        self.server = RPC.get_server(
            fabric,
            node,
            port,
            instance=self,
            protocols=protocols,
            spec=self.spec,
            conf=self.conf,
            metrics=self.metrics,
            name=f"namenode@{node.name}",
        )
        # namesystem state gauges in the fabric-wide metrics registry
        registry = fabric.metrics
        self._gauge_datanodes = registry.gauge(
            "hdfs.namenode.live_datanodes", node=node.name
        )
        self._gauge_files = registry.gauge("hdfs.namenode.files", node=node.name)
        self._gauge_blocks = registry.gauge("hdfs.namenode.blocks", node=node.name)
        self._gauge_under_construction = registry.gauge(
            "hdfs.namenode.files_under_construction", node=node.name
        )
        self.journal = None
        if journal is not None:
            self._ha_init(
                node.name,
                journal,
                tracker=ha_tracker,
                gauge=registry.gauge("hdfs.namenode.ha.active", node=node.name),
                tail_period_us=self.conf.get_float("dfs.ha.tail-edits.period"),
            )

    @property
    def address(self):
        return self.server.address

    # ------------------------------------------------------------------
    # ClientProtocol
    # ------------------------------------------------------------------
    def getFileInfo(self, path: Text):
        self._check_active("getFileInfo")
        inode = self.namespace.get(path.value)
        if inode is None:
            return NullWritable()
        return FileStatusWritable(
            path=inode.path,
            length=inode.length,
            is_dir=inode.is_dir,
            replication=inode.replication,
            block_size=inode.block_size,
            modification_time=int(self.env.now),
        )

    def mkdirs(self, path: Text):
        self._check_active("mkdirs")
        yield self.env.timeout(self.fabric.model.software.editlog_sync_us)
        parts = [p for p in path.value.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if current not in self.namespace:
                self.namespace[current] = INode(current, is_dir=True)
        self._journal_op("mkdirs", path=path.value)
        self._update_gauges()
        return BooleanWritable(True)

    def create(self, path: Text, replication: IntWritable, block_size: LongWritable):
        self._check_active("create")
        if path.value in self.namespace:
            raise FileExistsError(f"{path.value} already exists")
        yield self.env.timeout(self.fabric.model.software.editlog_sync_us)
        self.namespace[path.value] = INode(
            path.value,
            replication=replication.value,
            block_size=block_size.value,
            under_construction=True,
        )
        self._journal_op(
            "create",
            path=path.value,
            replication=replication.value,
            block_size=block_size.value,
        )
        self._update_gauges()
        return BooleanWritable(True)

    def renewLease(self, client_name: Text):
        self._check_active("renewLease")
        return NullWritable()

    def addBlock(self, path: Text, client_name: Text):
        """Allocate the next block — after checking file progress.

        Raises :class:`NotReplicatedYet` (travelling as a
        RemoteException) when the previous block has no confirmed
        replica yet, exactly like 0.20.2's ``getAdditionalBlock``.
        """
        self._check_active("addBlock")
        inode = self._file(path)
        self.stats["addBlock"] += 1
        min_replication = min(
            self.conf.get_int("dfs.replication.min", 1), inode.replication
        )
        if inode.blocks and len(inode.blocks[-1].replicas) < min_replication:
            self.stats["addBlock_retries_rejected"] += 1
            raise NotReplicatedYet(
                f"{path.value}: block {inode.blocks[-1].block_id} not replicated yet"
            )
        block = BlockInfo(next(self._block_ids), 0)
        inode.blocks.append(block)
        self.block_map[block.block_id] = block
        self._journal_op("addBlock", path=path.value, block_id=block.block_id)
        self._update_gauges()
        targets = self._choose_targets(client_name.value, inode.replication)
        return LocatedBlockWritable(
            BlockWritable(block.block_id, 0, 0),
            [DatanodeInfoWritable(d.name, d.capacity, d.remaining) for d in targets],
        )

    def complete(self, path: Text, client_name: Text):
        """True when every block has >= 1 confirmed replica."""
        self._check_active("complete")
        inode = self._file(path)
        self.stats["completes"] += 1
        min_replication = min(
            self.conf.get_int("dfs.replication.min", 1), inode.replication
        )
        if all(len(b.replicas) >= min_replication for b in inode.blocks):
            if inode.under_construction:
                inode.under_construction = False
                yield self.env.timeout(self.fabric.model.software.editlog_sync_us)
                self._journal_op("complete", path=path.value)
                self._update_gauges()
            return BooleanWritable(True)
        self.stats["completes_false"] += 1
        return BooleanWritable(False)

    def getListing(self, path: Text):
        self._check_active("getListing")
        prefix = path.value.rstrip("/") + "/"
        children = [
            self.getFileInfo(Text(p))
            for p in sorted(self.namespace)
            if p.startswith(prefix) and "/" not in p[len(prefix):] and p != path.value
        ]
        return ArrayWritable([c for c in children if isinstance(c, FileStatusWritable)])

    def rename(self, src: Text, dst: Text):
        self._check_active("rename")
        inode = self.namespace.pop(src.value, None)
        if inode is None:
            return BooleanWritable(False)
        yield self.env.timeout(self.fabric.model.software.editlog_sync_us)
        inode.path = dst.value
        self.namespace[dst.value] = inode
        self._journal_op("rename", src=src.value, dst=dst.value)
        return BooleanWritable(True)

    def delete(self, path: Text):
        self._check_active("delete")
        inode = self.namespace.pop(path.value, None)
        if inode is None:
            return BooleanWritable(False)
        yield self.env.timeout(self.fabric.model.software.editlog_sync_us)
        for block in inode.blocks:
            self.block_map.pop(block.block_id, None)
        self._journal_op("delete", path=path.value)
        self._update_gauges()
        return BooleanWritable(True)

    def getBlockLocations(self, path: Text, offset: LongWritable, length: LongWritable):
        self._check_active("getBlockLocations")
        inode = self._file(path)
        located = []
        position = 0
        for block in inode.blocks:
            if position + block.num_bytes > offset.value and position < (
                offset.value + length.value
            ):
                located.append(
                    LocatedBlockWritable(
                        BlockWritable(block.block_id, block.num_bytes, 0),
                        [
                            DatanodeInfoWritable(name)
                            for name in sorted(block.replicas)
                        ],
                    )
                )
            position += block.num_bytes
        return LocatedBlocksWritable(inode.length, located)

    # ------------------------------------------------------------------
    # DatanodeProtocol
    # ------------------------------------------------------------------
    def register(self, info: DatanodeInfoWritable):
        node = self.fabric.nodes.get(info.name)
        if node is None:
            raise ValueError(f"unknown fabric node {info.name!r}")
        self.datanodes[info.name] = DatanodeDescriptor(
            info.name, node, info.capacity, info.remaining, self.env.now
        )
        self._update_gauges()
        return NullWritable()

    def sendHeartbeat(self, heartbeat: HeartbeatWritable):
        descriptor = self.datanodes.get(heartbeat.name)
        if descriptor is not None:
            descriptor.last_heartbeat_us = self.env.now
            descriptor.remaining = heartbeat.remaining
            descriptor.xceivers = heartbeat.xceiver_count
        self.stats["heartbeats"] += 1
        return NullWritable()

    def blockReceived(self, name: Text, block: BlockWritable):
        info = self.block_map.get(block.block_id)
        if info is not None:
            info.replicas.add(name.value)
            info.num_bytes = max(info.num_bytes, block.num_bytes)
        elif self.journal is not None:
            # Standby hears about a block before tailing its addBlock
            # edit: stash the report, merged during replay.  This is how
            # an activating standby already knows replica locations — the
            # zero-acknowledged-write-loss guarantee rests on it.
            self._pending_replicas.setdefault(block.block_id, []).append(
                (name.value, block.num_bytes)
            )
        self.stats["blockReceived"] += 1
        return NullWritable()

    def blockReport(self, report: BlockReportWritable):
        # per-block bookkeeping under the namesystem lock
        yield self.env.timeout(0.4 * len(report.block_ids))
        for block_id in report.block_ids:
            info = self.block_map.get(block_id)
            if info is not None:
                info.replicas.add(report.name)
        return NullWritable()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_active(self, op: str) -> None:
        """HA gate for ClientProtocol methods; no-op on a non-HA build."""
        if self.journal is not None and self.ha_state is not HAState.ACTIVE:
            self.stats["standby_rejected"] += 1
            self.check_active(op)  # raises StandbyException

    def _journal_op(self, op: str, **payload) -> None:
        """Record one committed namespace edit (no-op on a non-HA build)."""
        if self.journal is not None:
            self.journal_edit(op, payload)

    def _apply_entry(self, entry) -> None:
        """Standby replay: re-apply one tailed edit to local state."""
        p = entry.payload
        if entry.op == "mkdirs":
            parts = [s for s in p["path"].split("/") if s]
            current = ""
            for part in parts:
                current += "/" + part
                if current not in self.namespace:
                    self.namespace[current] = INode(current, is_dir=True)
        elif entry.op == "create":
            self.namespace[p["path"]] = INode(
                p["path"],
                replication=p["replication"],
                block_size=p["block_size"],
                under_construction=True,
            )
        elif entry.op == "addBlock":
            block = BlockInfo(p["block_id"], 0)
            for name, num_bytes in self._pending_replicas.pop(
                p["block_id"], ()
            ):
                block.replicas.add(name)
                block.num_bytes = max(block.num_bytes, num_bytes)
            inode = self.namespace.get(p["path"])
            if inode is not None and not inode.is_dir:
                inode.blocks.append(block)
            self.block_map[p["block_id"]] = block
            # Never re-allocate an id the fenced active already handed
            # out — a post-takeover addBlock must not collide.
            self._block_ids = itertools.count(p["block_id"] + 1)
        elif entry.op == "complete":
            inode = self.namespace.get(p["path"])
            if inode is not None:
                inode.under_construction = False
        elif entry.op == "rename":
            inode = self.namespace.pop(p["src"], None)
            if inode is not None:
                inode.path = p["dst"]
                self.namespace[p["dst"]] = inode
        elif entry.op == "delete":
            inode = self.namespace.pop(p["path"], None)
            if inode is not None:
                for block in inode.blocks:
                    self.block_map.pop(block.block_id, None)

    def _after_replay(self) -> None:
        self._update_gauges()

    def _update_gauges(self) -> None:
        """Refresh namesystem gauges after any state mutation.

        Gauges only record (simulated-time, value) pairs — they never
        schedule events, so reported experiment numbers are unaffected.
        """
        self._gauge_datanodes.set(len(self.datanodes))
        files = [i for i in self.namespace.values() if not i.is_dir]
        self._gauge_files.set(len(files))
        self._gauge_blocks.set(len(self.block_map))
        self._gauge_under_construction.set(
            sum(1 for i in files if i.under_construction)
        )

    def _file(self, path: Text) -> INode:
        inode = self.namespace.get(path.value)
        if inode is None or inode.is_dir:
            raise FileNotFoundError(f"no such file: {path.value}")
        return inode

    def _choose_targets(self, client_name: str, replication: int) -> List[DatanodeDescriptor]:
        """Default placement: writer-local first, then random distinct."""
        alive = list(self.datanodes.values())
        if not alive:
            raise RuntimeError("no DataNodes registered")
        replication = min(replication, len(alive))
        targets: List[DatanodeDescriptor] = []
        local = self.datanodes.get(client_name)
        if local is not None:
            targets.append(local)
        others = [d for d in alive if d is not (local if local else None)]
        self.rng.shuffle(others)
        for descriptor in others:
            if len(targets) >= replication:
                break
            targets.append(descriptor)
        return targets[:replication]
