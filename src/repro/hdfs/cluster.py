"""HdfsCluster: wires a NameNode and DataNodes onto a fabric.

Encodes the paper's Fig. 7 configuration matrix: the *data* transport
(socket over 1GigE/IPoIB, or RDMA = HDFSoIB) and the *RPC* transport
(sockets over 1GigE/IPoIB, or RPCoIB) vary independently.

Passing ``standby_node`` turns the deployment into an HA pair: both
NameNodes share a :class:`~repro.ha.SharedJournal`, the first is
granted the initial epoch and promoted at construction, DataNodes fan
their control traffic out to both members, and clients get a
:class:`~repro.rpc.failover.FailoverProxy` over the ordered address
pair.  ``controller_node`` additionally starts a
:class:`~repro.ha.FailoverController` that detects a dead active and
drives fencing + takeover.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.calibration import NetworkSpec
from repro.config import Configuration
from repro.ha.controller import FailoverController
from repro.ha.journal import SharedJournal
from repro.ha.state import HAState, HaStateTracker
from repro.hdfs.client import DFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.net.fabric import Fabric, Node
from repro.rpc.metrics import RpcMetrics
from repro.simcore.rng import Random, named_stream


class HdfsCluster:
    """A complete HDFS deployment on an existing fabric."""

    def __init__(
        self,
        fabric: Fabric,
        namenode_node: Node,
        datanode_nodes: List[Node],
        rpc_spec: NetworkSpec,
        conf: Optional[Configuration] = None,
        data_transport: str = "socket",
        data_spec: Optional[NetworkSpec] = None,
        rng: Optional[Random] = None,
        metrics: Optional[RpcMetrics] = None,
        heartbeats: bool = True,
        standby_node: Optional[Node] = None,
        controller_node: Optional[Node] = None,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.conf = conf or Configuration()
        self.rpc_spec = rpc_spec
        self.metrics = metrics or RpcMetrics()
        rng = rng or named_stream("hdfs-cluster")
        self.journal: Optional[SharedJournal] = None
        self.ha_tracker: Optional[HaStateTracker] = None
        self.standby: Optional[NameNode] = None
        self.controller: Optional[FailoverController] = None
        if standby_node is not None:
            self.journal = SharedJournal()
            self.ha_tracker = HaStateTracker(self.env)
        self.namenode = NameNode(
            fabric,
            namenode_node,
            conf=self.conf,
            spec=rpc_spec,
            metrics=self.metrics,
            rng=Random(rng.getrandbits(32)),
            journal=self.journal,
            ha_tracker=self.ha_tracker,
        )
        if standby_node is not None:
            self.standby = NameNode(
                fabric,
                standby_node,
                conf=self.conf,
                spec=rpc_spec,
                metrics=self.metrics,
                rng=Random(rng.getrandbits(32)),
                journal=self.journal,
                ha_tracker=self.ha_tracker,
            )
            # Initial grant: first member gets the journal and serves.
            epoch = self.journal.new_epoch(self.namenode.node.name)
            self.namenode.transition_to_active(epoch)
        if self.standby is not None:
            self._nn_addresses = [self.namenode.address, self.standby.address]
        else:
            self._nn_addresses = self.namenode.address
        self.datanodes: Dict[str, DataNode] = {}
        for node in datanode_nodes:
            self.datanodes[node.name] = DataNode(
                fabric,
                node,
                self._nn_addresses,
                conf=self.conf,
                rpc_spec=rpc_spec,
                data_transport=data_transport,
                data_spec=data_spec,
                metrics=self.metrics,
                rng=Random(rng.getrandbits(32)),
                heartbeats=heartbeats,
            )
        if controller_node is not None and self.standby is not None:
            self.controller = FailoverController(
                fabric,
                controller_node,
                [self.namenode, self.standby],
                self.journal,
                conf=self.conf,
                spec=rpc_spec,
                rng=Random(rng.getrandbits(32)),
            )
        self._rng = rng

    @property
    def namenodes(self) -> List[NameNode]:
        """All NameNode members (one, or the HA pair)."""
        if self.standby is not None:
            return [self.namenode, self.standby]
        return [self.namenode]

    def active_namenode(self) -> Optional[NameNode]:
        """The member currently active (None mid-failover)."""
        if self.standby is None:
            return self.namenode
        for member in self.namenodes:
            if member.ha_state is HAState.ACTIVE:
                return member
        return None

    def datanode(self, name: str) -> DataNode:
        try:
            return self.datanodes[name]
        except KeyError:
            raise KeyError(f"no DataNode named {name!r}") from None

    def client(self, node: Node, name: str = "") -> DFSClient:
        """A DFSClient on ``node`` wired to this cluster."""
        return DFSClient(
            self.fabric,
            node,
            self._nn_addresses,
            self.datanode,
            conf=self.conf,
            rpc_spec=self.rpc_spec,
            rng=Random(self._rng.getrandbits(32)),
            metrics=self.metrics,
        )

    def wait_ready(self):
        """Event: all DataNodes have registered with the NameNode."""
        return self.env.all_of([dn._registered for dn in self.datanodes.values()])
