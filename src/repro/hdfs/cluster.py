"""HdfsCluster: wires a NameNode and DataNodes onto a fabric.

Encodes the paper's Fig. 7 configuration matrix: the *data* transport
(socket over 1GigE/IPoIB, or RDMA = HDFSoIB) and the *RPC* transport
(sockets over 1GigE/IPoIB, or RPCoIB) vary independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.calibration import NetworkSpec
from repro.config import Configuration
from repro.hdfs.client import DFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.net.fabric import Fabric, Node
from repro.rpc.metrics import RpcMetrics
from repro.simcore.rng import Random, named_stream


class HdfsCluster:
    """A complete HDFS deployment on an existing fabric."""

    def __init__(
        self,
        fabric: Fabric,
        namenode_node: Node,
        datanode_nodes: List[Node],
        rpc_spec: NetworkSpec,
        conf: Optional[Configuration] = None,
        data_transport: str = "socket",
        data_spec: Optional[NetworkSpec] = None,
        rng: Optional[Random] = None,
        metrics: Optional[RpcMetrics] = None,
        heartbeats: bool = True,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.conf = conf or Configuration()
        self.rpc_spec = rpc_spec
        self.metrics = metrics or RpcMetrics()
        rng = rng or named_stream("hdfs-cluster")
        self.namenode = NameNode(
            fabric,
            namenode_node,
            conf=self.conf,
            spec=rpc_spec,
            metrics=self.metrics,
            rng=Random(rng.getrandbits(32)),
        )
        self.datanodes: Dict[str, DataNode] = {}
        for node in datanode_nodes:
            self.datanodes[node.name] = DataNode(
                fabric,
                node,
                self.namenode.address,
                conf=self.conf,
                rpc_spec=rpc_spec,
                data_transport=data_transport,
                data_spec=data_spec,
                metrics=self.metrics,
                rng=Random(rng.getrandbits(32)),
                heartbeats=heartbeats,
            )
        self._rng = rng

    def datanode(self, name: str) -> DataNode:
        try:
            return self.datanodes[name]
        except KeyError:
            raise KeyError(f"no DataNode named {name!r}") from None

    def client(self, node: Node, name: str = "") -> DFSClient:
        """A DFSClient on ``node`` wired to this cluster."""
        return DFSClient(
            self.fabric,
            node,
            self.namenode.address,
            self.datanode,
            conf=self.conf,
            rpc_spec=self.rpc_spec,
            rng=Random(self._rng.getrandbits(32)),
            metrics=self.metrics,
        )

    def wait_ready(self):
        """Event: all DataNodes have registered with the NameNode."""
        return self.env.all_of([dn._registered for dn in self.datanodes.values()])
