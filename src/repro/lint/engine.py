"""Two-pass lint driver: collect every module, then analyze.

Pass 1 (*collect*) parses each file once and builds the whole-program
symbol table + call graph (:mod:`repro.lint.callgraph`).  Pass 2
(*analyze*) runs the per-file checkers on every module and the
whole-program checkers (SIM009-SIM011) on the assembled
:class:`~repro.lint.callgraph.Program`, then applies suppression
comments per file.

Suppression grammar (spaces around ``=`` and around commas are fine)::

    # sim-lint: disable                      silence every rule, this line
    # sim-lint: disable=SIM001, SIM004       silence listed rules, this line
    # sim-lint: disable-file=SIM002          silence listed rules, whole file
    # sim-lint: disable-file                 silence everything, whole file

Anything after the rule list is free-text justification.  A
``sim-lint:`` comment that does not parse, or that names an unknown
rule, is itself reported as SIM000 — a typo'd directive must never
silently change what is linted.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint import callgraph as callgraph_mod
from repro.lint.findings import Finding, RULES
from repro.lint.rules import CHECKERS, LintContext, PROGRAM_CHECKERS, ProgramContext

#: Directory names skipped while *recursing* (explicitly-listed files
#: are always linted — that is how the test suite lints its fixture
#: files, which contain violations on purpose).
DEFAULT_EXCLUDED_DIRS = {"fixtures", "__pycache__", ".git", ".hypothesis", ".venv"}

#: Comma-separated rule list: ``SIM001`` / ``SIM001,SIM004`` / spaces ok.
_RULE_LIST = r"[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*"

#: The line form, ``disable[=RULES]``, on the flagged line.  ``\s*=\s*``
#: accepts spaces around ``=`` — they used to demote the directive to a
#: bare ``disable`` that silenced every rule on the line.  The bare form
#: must end the comment: ``disable SIM001`` (missing ``=``) suppresses
#: nothing and is reported as SIM000 instead of widening to all rules.
_LINE_SUPPRESS = re.compile(
    rf"#\s*sim-lint:\s*disable(?:\s*=\s*({_RULE_LIST})(?=\s|$)|\s*$)"
)
#: The file form, ``disable-file[=RULES]``, anywhere in the file.
_FILE_SUPPRESS = re.compile(
    rf"#\s*sim-lint:\s*disable-file(?:\s*=\s*({_RULE_LIST})(?=\s|$)|\s*$)"
)

#: Any ``sim-lint:`` comment at all — used to validate directives.
_DIRECTIVE = re.compile(r"#\s*sim-lint:\s*(?P<text>.*)$")
#: A well-formed directive at the start of the comment text.
_DIRECTIVE_SHAPE = re.compile(
    rf"^(?P<kind>disable-file|disable)"
    rf"(?:\s*=\s*(?P<rules>{_RULE_LIST}))?(?=\s|$)"
)


def _parse_rule_list(spec: Optional[str]) -> Optional[Set[str]]:
    """None means "all rules" (a bare ``disable``)."""
    if spec is None:
        return None
    rules = {part.strip().upper() for part in spec.split(",") if part.strip()}
    return rules or None


#: sentinel distinguishing "no directive on this line" from a bare
#: ``disable`` (stored as None = all rules off).
_NO_DIRECTIVE = object()


def _suppressed(
    finding: Finding,
    line_off: Dict[int, Optional[Set[str]]],
    file_off: Optional[Set[str]],
) -> bool:
    if finding.rule == "SIM000":
        # Directive errors and syntax errors are never suppressible —
        # otherwise a malformed directive could silence its own report.
        return False
    if file_off is not None and (not file_off or finding.rule in file_off):
        return True
    rules = line_off.get(finding.line, _NO_DIRECTIVE)
    if rules is _NO_DIRECTIVE:
        return False
    return rules is None or finding.rule in rules


def _line_suppressions(
    comments: List[Tuple[int, int, str]]
) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rules on that line (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, _, text in comments:
        match = _LINE_SUPPRESS.search(text)
        if match:
            out[lineno] = _parse_rule_list(match.group(1))
    return out


def _file_suppressions(
    comments: List[Tuple[int, int, str]]
) -> Optional[Set[str]]:
    """Set of file-wide disabled rules; empty set = all; None = none.

    Both suppression forms are matched against real comment tokens only
    — a directive quoted in a docstring or string literal used to
    *suppress* (while never being validated); now it does neither.
    """
    disabled: Optional[Set[str]] = None
    for _, _, text in comments:
        match = _FILE_SUPPRESS.search(text)
        if match:
            rules = _parse_rule_list(match.group(1))
            if rules is None:
                return set()  # bare disable-file: everything off
            disabled = (disabled or set()) | rules
    return disabled


def _comment_tokens(lines: List[str]) -> List[Tuple[int, int, str]]:
    """(line, col, text) of every real comment — strings don't count."""
    source = "\n".join(lines) + "\n"
    comments: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: the ast pass reports SIM000 already
    return comments


def _directive_findings(
    comments: List[Tuple[int, int, str]], path: str
) -> List[Finding]:
    """SIM000 for every malformed or unknown ``sim-lint:`` directive."""
    findings: List[Finding] = []
    for lineno, col, comment in comments:
        match = _DIRECTIVE.search(comment)
        if match is None:
            continue
        text = match.group("text").strip()
        shape = _DIRECTIVE_SHAPE.match(text)
        if shape is None:
            findings.append(Finding(
                path=path,
                line=lineno,
                col=col + match.start() + 1,
                rule="SIM000",
                message=(
                    f"unrecognized sim-lint directive {text!r} — expected "
                    "disable[=RULE,...] or disable-file[=RULE,...]"
                ),
            ))
            continue
        spec = shape.group("rules")
        if spec is None:
            # Bare disable: allowed only when nothing trails it, so a
            # mistyped rule list cannot silently widen to "all rules".
            remainder = text[shape.end():].strip()
            if remainder:
                findings.append(Finding(
                    path=path,
                    line=lineno,
                    col=col + match.start() + 1,
                    rule="SIM000",
                    message=(
                        f"bare {shape.group('kind')!r} directive followed by "
                        f"{remainder!r} — name the rules explicitly "
                        "(disable=RULE,...) or remove the trailing text"
                    ),
                ))
            continue
        for code in (_parse_rule_list(spec) or set()):
            if code not in RULES:
                findings.append(Finding(
                    path=path,
                    line=lineno,
                    col=col + match.start() + 1,
                    rule="SIM000",
                    message=(
                        f"unknown rule {code!r} in sim-lint directive — "
                        f"known rules: {', '.join(sorted(RULES))}"
                    ),
                ))
    return findings


# --------------------------------------------------------------------------
# Pass 1: collect
# --------------------------------------------------------------------------

def _collect_module(
    source: str, path: str, in_src: Optional[bool]
) -> Tuple[Optional[callgraph_mod.ModuleInfo], List[Finding]]:
    """Parse one file into a ModuleInfo (or a SIM000 syntax finding)."""
    posix = Path(path).absolute().as_posix()
    if in_src is None:
        in_src = "/src/" in posix
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="SIM000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = callgraph_mod.collect_module(
        tree, path=path, posix=posix, in_src=in_src,
        lines=source.splitlines(),
    )
    return module, []


# --------------------------------------------------------------------------
# Pass 2: analyze
# --------------------------------------------------------------------------

def _analyze(
    modules: List[callgraph_mod.ModuleInfo],
    parse_findings: List[Finding],
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run per-file + whole-program checkers, then apply suppressions."""
    selected = (
        set(rules) if rules is not None
        else set(CHECKERS) | set(PROGRAM_CHECKERS) | {"SIM000"}
    )
    raw: Dict[str, List[Finding]] = {}
    for finding in parse_findings:
        raw.setdefault(finding.path, []).append(finding)

    comments_by_path: Dict[str, List[Tuple[int, int, str]]] = {}
    for module in modules:
        ctx = LintContext(
            path=module.path,
            posix=module.posix,
            tree=module.tree,
            in_src=module.in_src,
            aliases=module.aliases,
            parents=module.parents,
        )
        bucket = raw.setdefault(module.path, [])
        comments = _comment_tokens(module.lines)
        comments_by_path[module.path] = comments
        if "SIM000" in selected:
            bucket.extend(_directive_findings(comments, module.path))
        for code, checker in CHECKERS.items():
            if code in selected:
                bucket.extend(checker(ctx))

    if selected & set(PROGRAM_CHECKERS):
        program = callgraph_mod.Program(modules)
        pctx = ProgramContext(program=program,
                              callgraph=callgraph_mod.CallGraph(program))
        for code, checker in PROGRAM_CHECKERS.items():
            if code in selected:
                for finding in checker(pctx):
                    raw.setdefault(finding.path, []).append(finding)

    findings: List[Finding] = []
    for path, bucket in raw.items():
        comments = comments_by_path.get(path, [])
        file_off = _file_suppressions(comments)
        line_off = _line_suppressions(comments)
        findings.extend(
            finding for finding in bucket
            if not _suppressed(finding, line_off, file_off)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# --------------------------------------------------------------------------
# Public entry points (same surface as the per-file engine)
# --------------------------------------------------------------------------

def lint_source(
    source: str,
    path: str,
    in_src: Optional[bool] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as text.

    The module forms a one-file program, so the whole-program rules run
    too (spawn sites and encoder/decoder pairs must then live in the
    same file — which is how the fixture tests exercise them).

    ``in_src`` overrides the src-scoping heuristic — pass True to apply
    the src-only rules regardless of where the file lives.
    """
    module, parse_findings = _collect_module(source, path, in_src)
    modules = [module] if module is not None else []
    return _analyze(modules, parse_findings, rules=rules)


def lint_file(
    path: "str | Path",
    in_src: Optional[bool] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), in_src=in_src, rules=rules)


def iter_python_files(
    paths: Sequence["str | Path"],
    excluded_dirs: Optional[Set[str]] = None,
) -> List[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    if excluded_dirs is None:
        excluded_dirs = DEFAULT_EXCLUDED_DIRS
    out: List[Path] = []
    seen: Set[Path] = set()

    def add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(candidate)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            add(path)  # explicit files bypass the excludes
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in excluded_dirs for part in candidate.parts):
                continue
            add(candidate)
    return out


def lint_paths(
    paths: Sequence["str | Path"],
    excluded_dirs: Optional[Set[str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every python file under ``paths`` as one program.

    All files are collected first (pass 1) so the call graph spans the
    entire invocation; the whole-program rules then see every spawn
    site and class, wherever it lives (pass 2).
    """
    modules: List[callgraph_mod.ModuleInfo] = []
    parse_findings: List[Finding] = []
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        text = Path(path).read_text(encoding="utf-8")
        module, bad = _collect_module(text, str(path), in_src=None)
        parse_findings.extend(bad)
        if module is not None:
            modules.append(module)
    return _analyze(modules, parse_findings, rules=rules)


def rule_catalogue() -> Dict[str, str]:
    return dict(RULES)
