"""File walking, suppression handling, and rule dispatch."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint import astutil
from repro.lint.findings import Finding, RULES
from repro.lint.rules import CHECKERS, LintContext

#: Directory names skipped while *recursing* (explicitly-listed files
#: are always linted — that is how the test suite lints its fixture
#: files, which contain violations on purpose).
DEFAULT_EXCLUDED_DIRS = {"fixtures", "__pycache__", ".git", ".hypothesis", ".venv"}

#: ``# sim-lint: disable=SIM001,SIM004`` on the flagged line, or a bare
#: ``# sim-lint: disable`` to silence every rule on that line.
_LINE_SUPPRESS = re.compile(
    r"#\s*sim-lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?(?:\s|$)"
)
#: ``# sim-lint: disable-file=SIM002`` anywhere in the file.
_FILE_SUPPRESS = re.compile(
    r"#\s*sim-lint:\s*disable-file(?:=([A-Za-z0-9_,\s]+))?(?:\s|$)"
)


def _parse_rule_list(spec: Optional[str]) -> Optional[Set[str]]:
    """None means "all rules" (a bare ``disable``)."""
    if spec is None:
        return None
    rules = {part.strip().upper() for part in spec.split(",") if part.strip()}
    return rules or None


def _suppressed(finding: Finding, lines: List[str], file_off: Optional[Set[str]]) -> bool:
    if file_off is not None and (not file_off or finding.rule in file_off):
        return True
    if 1 <= finding.line <= len(lines):
        match = _LINE_SUPPRESS.search(lines[finding.line - 1])
        if match:
            rules = _parse_rule_list(match.group(1))
            return rules is None or finding.rule in rules
    return False


def _file_suppressions(lines: List[str]) -> Optional[Set[str]]:
    """Set of file-wide disabled rules; empty set = all; None = none."""
    disabled: Optional[Set[str]] = None
    for line in lines:
        match = _FILE_SUPPRESS.search(line)
        if match:
            rules = _parse_rule_list(match.group(1))
            if rules is None:
                return set()  # bare disable-file: everything off
            disabled = (disabled or set()) | rules
    return disabled


def lint_source(
    source: str,
    path: str,
    in_src: Optional[bool] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as text.

    ``in_src`` overrides the src-scoping heuristic — pass True to apply
    the src-only rules (SIM003, SIM004's equality check, SIM006)
    regardless of where the file lives.
    """
    posix = Path(path).absolute().as_posix()
    if in_src is None:
        in_src = "/src/" in posix
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="SIM000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=path,
        posix=posix,
        tree=tree,
        in_src=in_src,
        aliases=astutil.build_alias_map(tree),
        parents=astutil.build_parent_map(tree),
    )
    lines = source.splitlines()
    file_off = _file_suppressions(lines)
    selected = set(rules) if rules is not None else set(CHECKERS)
    findings: List[Finding] = []
    for code, checker in CHECKERS.items():
        if code not in selected:
            continue
        for finding in checker(ctx):
            if not _suppressed(finding, lines, file_off):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: "str | Path",
    in_src: Optional[bool] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), in_src=in_src, rules=rules)


def iter_python_files(
    paths: Sequence["str | Path"],
    excluded_dirs: Optional[Set[str]] = None,
) -> List[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    if excluded_dirs is None:
        excluded_dirs = DEFAULT_EXCLUDED_DIRS
    out: List[Path] = []
    seen: Set[Path] = set()

    def add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(candidate)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            add(path)  # explicit files bypass the excludes
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in excluded_dirs for part in candidate.parts):
                continue
            add(candidate)
    return out


def lint_paths(
    paths: Sequence["str | Path"],
    excluded_dirs: Optional[Set[str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every python file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        findings.extend(lint_file(path, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def rule_catalogue() -> Dict[str, str]:
    return dict(RULES)
