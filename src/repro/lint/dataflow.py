"""Intraprocedural dataflow facts feeding the whole-program rules.

Three fact families, all computed from single function bodies and then
combined across the :class:`~repro.lint.callgraph.CallGraph` by the
rules in :mod:`repro.lint.rules`:

* **attribute effects** (SIM009) — every ``self.<attr>`` read/write in
  a method, classified so commutative and revalidation-guarded writes
  can be exempted;
* **spawn sites** (SIM009) — every ``env.process(...)`` call and the
  generator bodies it starts, with multi-spawn detection;
* **conf caches** (SIM010) — ``self.attr = conf.get_*("key")`` in
  ``__init__`` plus per-class ``conf.subscribe`` detection;
* **serialization shapes** (SIM011) — the ordered ``write_*``/``read_*``
  token sequence of an encoder or decoder body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint import astutil
from repro.lint.callgraph import CallGraph, ClassInfo, FunctionInfo, Program


# --------------------------------------------------------------------------
# Attribute effects (SIM009)
# --------------------------------------------------------------------------

@dataclass
class AttrAccess:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    kind: str  # "read" | "write" | "incr" (augassign by a literal)
    func: FunctionInfo
    node: ast.AST
    guarded: bool = False  # write under a revalidation guard — see below


def _is_literal_increment(aug: ast.AugAssign) -> bool:
    """``self.x += <literal>`` — commutes, so concurrent bodies agree."""
    return (
        isinstance(aug.op, (ast.Add, ast.Sub))
        and astutil.literal_number(aug.value) is not None
    )


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _if_guard_attrs(if_node: ast.If) -> Set[str]:
    """Self-attrs read by the If's test expression."""
    out: Set[str] = set()
    for sub in ast.walk(if_node.test):
        attr = _self_attr(sub)
        if attr is not None:
            out.add(attr)
    return out


def _guarding_if_nodes(
    node: ast.AST, func_node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> List[ast.If]:
    """If-statements enclosing ``node`` within its function."""
    out: List[ast.If] = []
    current = node
    while current is not func_node:
        parent = parents.get(current)
        if parent is None:
            break
        if isinstance(parent, ast.If):
            out.append(parent)
        current = parent
    return out


def function_effects(func: FunctionInfo) -> List[AttrAccess]:
    """Every ``self.<attr>`` access in the method's own body.

    Writes are marked *guarded* when they sit inside an ``if`` whose
    test reads one of the attributes written in that same ``if`` — the
    revalidation-cache idiom (``if self._stamp != v: self._stamp = v;
    self._cache = ...`` or lazy init ``if self._pool is None: self._pool
    = ...``).  Any same-timestamp interleaving of such blocks converges
    to the same state, so SIM009 exempts them.
    """
    if func.cls is None:
        return []
    parents = func.module.parents
    accesses: List[AttrAccess] = []
    incr_value_ids: Set[int] = set()
    # Pre-compute which attrs each enclosing If writes, lazily.
    if_written: Dict[int, Set[str]] = {}

    def written_in(if_node: ast.If) -> Set[str]:
        key = id(if_node)
        if key not in if_written:
            attrs: Set[str] = set()
            for sub in ast.walk(if_node):
                target_attr = _self_attr(sub)
                if target_attr is not None and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    attrs.add(target_attr)
                elif isinstance(sub, ast.AugAssign):
                    aug_attr = _self_attr(sub.target)
                    if aug_attr is not None:
                        attrs.add(aug_attr)
            if_written[key] = attrs
        return if_written[key]

    for node in astutil.own_body_nodes(func.node):
        if isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is None:
                continue
            kind = "incr" if _is_literal_increment(node) else "write"
            guarded = _write_is_guarded(node, attr, func, parents, written_in)
            accesses.append(AttrAccess(attr, kind, func, node, guarded))
            # The target's Load half (if any) is implicit; don't also
            # record a read for the same attribute from this node.
            incr_value_ids.add(id(node.target))
            continue
        attr = _self_attr(node)
        if attr is None or id(node) in incr_value_ids:
            continue
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            guarded = _write_is_guarded(node, attr, func, parents, written_in)
            accesses.append(AttrAccess(attr, "write", func, node, guarded))
        else:
            accesses.append(AttrAccess(attr, "read", func, node))
    return accesses


def _write_is_guarded(node, attr, func, parents, written_in) -> bool:
    for if_node in _guarding_if_nodes(node, func.node, parents):
        guard_attrs = _if_guard_attrs(if_node)
        if guard_attrs & (written_in(if_node) | {attr}):
            return True
    return False


def body_effects(
    body: FunctionInfo, callgraph: CallGraph
) -> Dict[Tuple[str, str], List[AttrAccess]]:
    """Attribute effects of a process body, over *shared* state only.

    Keyed by ``(class name, attr)`` of the *accessing* method's class,
    so a server handler body that calls ``self.call_queue.take()`` —
    and through it ``scheduler.charge()`` — picks up the scheduler's
    attribute writes.

    Effects propagate only along shared call edges (``self``-rooted
    receivers and plain function calls).  Once a call goes through a
    locally-created object or a constructor, the reached ``self`` is
    private to this body and its attribute accesses cannot race —
    reaching a decoder via ``call = Invocation(); call.read_fields(inp)``
    must not charge the Invocation's writes to the reader loop.
    ``__init__`` effects are skipped for the same reason.
    """
    effects: Dict[Tuple[str, str], List[AttrAccess]] = {}
    seen: Set[Tuple[str, bool]] = {(body.qualname, True)}
    frontier: List[Tuple[FunctionInfo, bool]] = [(body, True)]
    while frontier:
        func, shared = frontier.pop(0)
        if shared and func.name != "__init__":
            for access in function_effects(func):
                key = (func.cls.name, access.attr)
                effects.setdefault(key, []).append(access)
        for callee, edge_shared in callgraph.shared_edges.get(func, ()):
            state = (callee.qualname, shared and edge_shared)
            if state not in seen:
                seen.add(state)
                frontier.append((callee, shared and edge_shared))
    return effects


# --------------------------------------------------------------------------
# Spawn sites (SIM009)
# --------------------------------------------------------------------------

@dataclass
class SpawnSite:
    """One ``env.process(target(...))`` call."""

    func: FunctionInfo  # the function containing the spawn
    node: ast.Call
    targets: List[FunctionInfo]
    in_loop: bool  # spawned inside a for/while/comprehension


@dataclass
class SpawnInfo:
    """Aggregated spawn facts for one process body."""

    body: FunctionInfo
    sites: List[SpawnSite] = field(default_factory=list)

    @property
    def multi(self) -> bool:
        """More than one concurrent instance of this body may exist."""
        return len(self.sites) > 1 or any(site.in_loop for site in self.sites)


_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)


def _spawn_in_loop(node: ast.AST, func_node: ast.AST,
                   parents: Dict[ast.AST, ast.AST]) -> bool:
    current = node
    while current is not func_node:
        parent = parents.get(current)
        if parent is None:
            return False
        if isinstance(parent, _LOOP_NODES):
            return True
        current = parent
    return False


def spawn_sites(func: FunctionInfo, callgraph: CallGraph) -> Iterator[SpawnSite]:
    """``env.process(...)`` calls in one function, targets resolved."""
    parents = func.module.parents
    for node in astutil.own_body_nodes(func.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
        ):
            continue
        receiver = astutil.last_segment(
            astutil.dotted_name(node.func.value)
        ).lstrip("_")
        if receiver != "env":
            continue
        targets: List[FunctionInfo] = []
        if node.args and isinstance(node.args[0], ast.Call):
            targets = [
                callee
                for callee in callgraph.resolve_call_in(func, node.args[0])
                if callee.is_generator
            ]
        yield SpawnSite(
            func=func,
            node=node,
            targets=targets,
            in_loop=_spawn_in_loop(node, func.node, parents),
        )


def spawned_bodies(
    program: Program, callgraph: CallGraph
) -> Dict[FunctionInfo, SpawnInfo]:
    """Every generator body spawned as a process anywhere in the program."""
    bodies: Dict[FunctionInfo, SpawnInfo] = {}
    for func in program.iter_functions():
        for site in spawn_sites(func, callgraph):
            for target in site.targets:
                info = bodies.get(target)
                if info is None:
                    info = bodies[target] = SpawnInfo(body=target)
                info.sites.append(site)
    return bodies


# --------------------------------------------------------------------------
# Conf caches (SIM010)
# --------------------------------------------------------------------------

def _conf_receiver(dotted: Optional[str]) -> bool:
    tail = astutil.last_segment(dotted).lstrip("_").lower()
    return "conf" in tail


@dataclass
class ConfCache:
    """``self.attr = <conf>.get_*("key")`` found in an ``__init__``."""

    cls: ClassInfo
    attr: str
    key: str
    getter: str
    node: ast.AST
    func: FunctionInfo


def _conf_get_keys(expr: ast.AST) -> Iterator[Tuple[str, str]]:
    """(getter, key) for each conf getter call inside ``expr``."""
    for sub in ast.walk(expr):
        if not (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr.startswith("get")
            and _conf_receiver(astutil.dotted_name(sub.func.value))
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            continue
        yield sub.func.attr, sub.args[0].value


def conf_caches(cls: ClassInfo, callgraph: CallGraph) -> Iterator[ConfCache]:
    """Conf keys cached into attributes during construction.

    Looks at ``__init__`` and every method reachable from it (helper
    ``_configure`` styles included) — but only methods of the *same*
    class, so composing another component does not attribute its caches
    here.
    """
    init = cls.methods.get("__init__")
    if init is None:
        return
    for func in callgraph.reachable(init):
        if func.cls is not cls:
            continue
        for node in astutil.own_body_nodes(func.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            value = node.value
            if value is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            attrs = [a for a in (_self_attr(t) for t in targets) if a]
            if not attrs:
                continue
            for getter, key in _conf_get_keys(value):
                for attr in attrs:
                    yield ConfCache(cls, attr, key, getter, node, func)


def class_subscribes(cls: ClassInfo, callgraph: CallGraph,
                     program: Program) -> bool:
    """True if any method of the class calls ``<conf>.subscribe(...)``."""
    for method in cls.methods.values():
        for func in callgraph.reachable(method):
            for node in astutil.own_body_nodes(func.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "subscribe"
                    and _conf_receiver(astutil.dotted_name(node.func.value))
                ):
                    return True
    return False


# --------------------------------------------------------------------------
# Serialization shapes (SIM011)
# --------------------------------------------------------------------------

#: Stream method -> normalized wire token, per direction.  Pairings
#: follow the DataOutput/DataInput contract of repro.io.streams.
WRITE_OPS = {
    "write_byte": "byte",
    "write_boolean": "bool",
    "write_short": "short",
    "write_int": "int",
    "write_long": "long",
    "write_float": "float",
    "write_double": "double",
    "write_utf": "utf",
    "write_vint": "vint",
    "write_vlong": "vlong",
    "write_bytes": "bytes",
    "write_bytes_raw": "bytes",
    "write": "bytes",
}
READ_OPS = {
    "read_byte": "byte",
    "read_unsigned_byte": "byte",
    "read_boolean": "bool",
    "read_short": "short",
    "read_int": "int",
    "read_long": "long",
    "read_float": "float",
    "read_double": "double",
    "read_utf": "utf",
    "read_vint": "vint",
    "read_vlong": "vlong",
    "read_fully": "bytes",
    "read": "bytes",
}

#: Method names that recurse into a nested Writable.
_NESTED_WRITE = ("write",)
_NESTED_READ = ("read_fields", "read")


@dataclass
class ShapeToken:
    kind: str  # "op" | "nested" | "loop" | "opt" | "stop"
    detail: str = ""
    body: List["ShapeToken"] = field(default_factory=list)

    def render(self) -> str:
        if self.kind == "op":
            return self.detail
        if self.kind == "nested":
            return "<writable>"
        if self.kind == "loop":
            return f"loop[{render_shape(self.body)}]"
        if self.kind == "opt":
            return f"opt[{render_shape(self.body)}]"
        return "…"


def render_shape(tokens: List[ShapeToken]) -> str:
    return " ".join(token.render() for token in tokens)


class _ShapeExtractor:
    """Ordered wire-token sequence of one encoder/decoder body."""

    def __init__(self, stream: str, mode: str):
        self.stream = stream
        self.ops = WRITE_OPS if mode == "write" else READ_OPS
        self.nested = _NESTED_WRITE if mode == "write" else _NESTED_READ

    # -- expressions --------------------------------------------------------
    def expr(self, node: Optional[ast.AST], out: List[ShapeToken]) -> None:
        if node is None:
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            # range(...) in the generators is evaluated before the loop.
            inner: List[ShapeToken] = []
            for gen in node.generators:
                self.expr(gen.iter, out)
                for cond in gen.ifs:
                    self.expr(cond, inner)
            if isinstance(node, ast.DictComp):
                self.expr(node.key, inner)
                self.expr(node.value, inner)
            else:
                self.expr(node.elt, inner)
            if inner:
                out.append(ShapeToken("loop", body=inner))
            return
        if isinstance(node, ast.Call):
            # Arguments are evaluated before the call itself.
            for arg in node.args:
                self.expr(arg, out)
            for kw in node.keywords:
                self.expr(kw.value, out)
            self.expr(node.func if not isinstance(node.func, ast.Attribute)
                      else node.func.value, out)
            token = self._call_token(node)
            if token is not None:
                out.append(token)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            self.expr(child, out)

    def _call_token(self, call: ast.Call) -> Optional[ShapeToken]:
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        receiver = astutil.dotted_name(call.func.value)
        if receiver == self.stream:
            norm = self.ops.get(method)
            if norm is not None:
                return ShapeToken("op", norm)
            if method.startswith(("write_", "read_")):
                return ShapeToken("stop")  # unknown stream op: bail out
            return None
        stream_arg = any(
            isinstance(arg, ast.Name) and arg.id == self.stream
            for arg in call.args
        )
        if stream_arg and method in self.nested:
            return ShapeToken("nested")
        return None

    # -- statements ---------------------------------------------------------
    def stmts(self, body: List[ast.stmt]) -> List[ShapeToken]:
        out: List[ShapeToken] = []
        for stmt in body:
            self.stmt(stmt, out)
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                                 ast.Continue)):
                break
        return out

    def stmt(self, stmt: ast.stmt, out: List[ShapeToken]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            self.expr(stmt.test, out)
            body = self.stmts(stmt.body)
            orelse = self.stmts(stmt.orelse)
            if not body and not orelse:
                return
            if body and orelse:
                if shapes_equal(body, orelse):
                    out.extend(body)
                else:
                    out.append(ShapeToken("stop"))
                return
            out.append(ShapeToken("opt", body=body or orelse))
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.expr(stmt.iter, out)
            body = self.stmts(stmt.body)
            if body:
                out.append(ShapeToken("loop", body=body))
            return
        if isinstance(stmt, ast.While):
            self.expr(stmt.test, out)
            body = self.stmts(stmt.body)
            if body:
                out.append(ShapeToken("loop", body=body))
            return
        if isinstance(stmt, ast.Try):
            out.extend(self.stmts(stmt.body))
            trailing = []
            for handler in stmt.handlers:
                trailing.extend(self.stmts(handler.body))
            trailing.extend(self.stmts(stmt.orelse))
            trailing.extend(self.stmts(stmt.finalbody))
            if trailing:
                out.append(ShapeToken("stop"))
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.expr(item.context_expr, out)
            out.extend(self.stmts(stmt.body))
            return
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.AST):
                self.expr(value, out)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        self.expr(item, out)


def serialization_shape(func_node: ast.AST, mode: str) -> Optional[List[ShapeToken]]:
    """Token sequence of an encoder (mode="write") or decoder body.

    Returns None when the stream parameter cannot be identified.
    """
    args = getattr(func_node, "args", None)
    if args is None or len(args.args) < 2:
        return None
    stream = args.args[1].arg
    return _ShapeExtractor(stream, mode).stmts(func_node.body)


def shapes_equal(a: List[ShapeToken], b: List[ShapeToken]) -> bool:
    if len(a) != len(b):
        return False
    for ta, tb in zip(a, b):
        if ta.kind != tb.kind or ta.detail != tb.detail:
            return False
        if not shapes_equal(ta.body, tb.body):
            return False
    return True


def compare_shapes(
    write: List[ShapeToken], read: List[ShapeToken]
) -> Optional[str]:
    """First asymmetry between an encoder and decoder shape, if any.

    Comparison stops at a ``stop`` token on either side (opaque control
    flow); everything before it must mirror exactly.
    """
    for i in range(max(len(write), len(read))):
        wt = write[i] if i < len(write) else None
        rt = read[i] if i < len(read) else None
        if (wt is not None and wt.kind == "stop") or (
            rt is not None and rt.kind == "stop"
        ):
            return None
        if wt is None:
            return (
                f"decoder consumes {render_shape(read[i:])} beyond the "
                f"{i} field(s) the encoder emits"
            )
        if rt is None:
            return (
                f"encoder emits {render_shape(write[i:])} beyond the "
                f"{i} field(s) the decoder consumes"
            )
        if wt.kind != rt.kind or (wt.kind == "op" and wt.detail != rt.detail):
            return (
                f"field {i + 1}: encoder emits {wt.render()} but decoder "
                f"consumes {rt.render()}"
            )
        if wt.kind in ("loop", "opt"):
            inner = compare_shapes(wt.body, rt.body)
            if inner is not None:
                return f"inside {wt.kind}: {inner}"
    return None


#: (encoder, decoder) method-name pairs checked by SIM011.
SERIALIZATION_PAIRS = (("write", "read_fields"),)


@dataclass
class ShapePair:
    cls: ClassInfo
    writer: FunctionInfo
    reader: FunctionInfo
    write_shape: List[ShapeToken]
    read_shape: List[ShapeToken]


def serialization_pairs(program: Program) -> Iterator[ShapePair]:
    for module in program.modules:
        for cls in module.classes.values():
            for write_name, read_name in SERIALIZATION_PAIRS:
                writer = cls.methods.get(write_name)
                reader = cls.methods.get(read_name)
                if writer is None or reader is None:
                    continue
                write_shape = serialization_shape(writer.node, "write")
                read_shape = serialization_shape(reader.node, "read")
                if write_shape is None or read_shape is None:
                    continue
                yield ShapePair(cls, writer, reader, write_shape, read_shape)
