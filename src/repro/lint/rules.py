"""The SIM rule families.

Per-file rules are functions ``check(ctx) -> Iterator[Finding]`` over
one parsed module.  Whole-program rules (SIM009-SIM011) are functions
``check(pctx) -> Iterator[Finding]`` over a :class:`ProgramContext`
holding every collected module plus the call graph.  All rules are
syntactic (see :mod:`repro.lint.astutil`); they favour precision over
recall so the linter can run clean on the whole tree without a wall of
suppressions.

Path scoping: some rules only make sense for simulation source —
unit tests legitimately leak pool buffers (``tests/mem``) and assert
exact clock values (``tests/simcore``).  Those rules consult
``ctx.in_src``, which is true for files under a ``src/`` directory (or
forced via :func:`repro.lint.engine.lint_source`'s ``in_src``), and
the declarative :data:`RULE_SCOPES` table, which is the one place
where modules are enrolled in or exempted from path-scoped rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint import astutil, dataflow
from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleInfo, Program
from repro.lint.findings import Finding


@dataclass
class LintContext:
    """Everything a rule needs to know about one module."""

    path: str  # as given on the command line (used in findings)
    posix: str  # normalized absolute posix path (used for scoping)
    tree: ast.Module
    in_src: bool
    aliases: Dict[str, str] = field(default_factory=dict)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


@dataclass
class ProgramContext:
    """Everything a whole-program rule needs: symbols + call graph."""

    program: Program
    callgraph: CallGraph

    def finding(self, module: ModuleInfo, node: ast.AST, rule: str,
                message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


# --------------------------------------------------------------------------
# Per-rule path scoping — the one place modules are enrolled
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies.

    ``fragments``        — posix path must contain one (empty = everywhere);
    ``exempt_fragments`` — posix paths containing one are skipped;
    ``exempt_suffixes``  — posix paths ending in one are skipped;
    ``src_only``         — rule only fires for files under ``src/``.
    """

    fragments: Tuple[str, ...] = ()
    exempt_fragments: Tuple[str, ...] = ()
    exempt_suffixes: Tuple[str, ...] = ()
    src_only: bool = False


RULE_SCOPES: Dict[str, RuleScope] = {
    # The experiments harness reports how long a *run of the simulator*
    # took, the bench plane exists to measure wall time, and the lint
    # CLI enforces its own wall-clock budget (--max-seconds).
    "SIM001": RuleScope(
        exempt_suffixes=(
            "repro/experiments/runner.py",
            "repro/experiments/bench.py",
            "repro/lint/cli.py",
        ),
    ),
    # repro.simcore.rng is where the raw generators live.
    "SIM002": RuleScope(exempt_suffixes=("repro/simcore/rng.py",)),
    # Seeded-schedule planes: fault draws decide *which* failures
    # happen, the decay scheduler's sweep jitter decides *when*
    # priorities shift, the HA failover controller's probe jitter
    # decides *when* takeover fires, the mux sender's flush policy
    # decides *which calls share a batch frame*, and the size
    # predictor decides *which transport every message rides* —
    # ambient randomness in any of them reshuffles every downstream
    # schedule.
    "SIM007": RuleScope(
        fragments=(
            "repro/faults/",
            "repro/rpc/scheduler.py",
            "repro/rpc/mux.py",
            "repro/ha/",
            "repro/mem/predictor.py",
        )
    ),
    # Zero-copy invariant holders: serialization + transport.
    "SIM008": RuleScope(fragments=("repro/io/", "repro/net/"), src_only=True),
    # Whole-program rule: hazards anywhere in simulation source *except*
    # the DES core — repro/simcore implements the same-timestamp
    # ordering itself (eid tie-break, event machinery, monitors), so
    # its own structures are the arbiter, not a client of it.
    "SIM009": RuleScope(src_only=True, exempt_fragments=("repro/simcore/",)),
    "SIM010": RuleScope(src_only=True),
    # Wire-format planes with Writable encoder/decoder pairs.
    "SIM011": RuleScope(
        fragments=(
            "repro/io/",
            "repro/rpc/",
            "repro/net/",
            "repro/hdfs/",
            "repro/hbase/",
            "repro/mapred/",
        ),
        src_only=True,
    ),
}


def rule_applies(code: str, posix: str, in_src: bool) -> bool:
    """Consult :data:`RULE_SCOPES`; rules without an entry apply everywhere."""
    scope = RULE_SCOPES.get(code)
    if scope is None:
        return True
    if scope.src_only and not in_src:
        return False
    if scope.exempt_suffixes and posix.endswith(scope.exempt_suffixes):
        return False
    if any(frag in posix for frag in scope.exempt_fragments):
        return False
    if scope.fragments and not any(frag in posix for frag in scope.fragments):
        return False
    return True


# --------------------------------------------------------------------------
# SIM001 — wall-clock reads
# --------------------------------------------------------------------------

#: Fully-resolved callables that read the host clock.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

def check_sim001(ctx: LintContext) -> Iterator[Finding]:
    if not rule_applies("SIM001", ctx.posix, ctx.in_src):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolved_name(node.func, ctx.aliases)
        if resolved in WALL_CLOCK_CALLS:
            yield ctx.finding(
                node,
                "SIM001",
                f"wall-clock read {resolved}() — simulation code must use "
                "env.now (only the experiments harness may measure wall time)",
            )


# --------------------------------------------------------------------------
# SIM002 — nondeterministic randomness
# --------------------------------------------------------------------------

#: Module-level draw functions of the shared global `random` RNG.
GLOBAL_DRAWS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "randbytes", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getstate", "setstate",
}

def check_sim002(ctx: LintContext) -> Iterator[Finding]:
    if not rule_applies("SIM002", ctx.posix, ctx.in_src):
        return
    if ctx.in_src:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(name.name.split(".")[0] == "random" for name in node.names):
                    yield ctx.finding(
                        node,
                        "SIM002",
                        "direct `import random` in simulation source — use "
                        "repro.simcore.rng (named_stream / Random / stable_seed)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "random":
                    yield ctx.finding(
                        node,
                        "SIM002",
                        "direct `from random import ...` in simulation source — "
                        "use repro.simcore.rng (named_stream / Random / stable_seed)",
                    )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolved_name(node.func, ctx.aliases) or ""
        last = astutil.last_segment(resolved)
        # hash()-derived seeds vary per process under PYTHONHASHSEED.
        if last in ("Random", "SystemRandom", "RandomState", "default_rng", "seed"):
            salted = [
                arg
                for arg in list(node.args) + [kw.value for kw in node.keywords]
                if astutil.contains_hash_call(arg)
            ]
            if salted:
                yield ctx.finding(
                    node,
                    "SIM002",
                    f"{last}() seeded from hash(): varies across interpreter "
                    "runs under PYTHONHASHSEED — derive the seed with "
                    "repro.simcore.rng.stable_seed(...)",
                )
                continue
        if resolved == "random.Random" and not node.args and not node.keywords:
            yield ctx.finding(
                node,
                "SIM002",
                "Random() without a seed draws OS entropy — seed it or use "
                "repro.simcore.rng.named_stream(...)",
            )
        elif resolved == "random.SystemRandom" or resolved.endswith(
            ".SystemRandom"
        ):
            yield ctx.finding(
                node,
                "SIM002",
                "SystemRandom is nondeterministic by design — use "
                "repro.simcore.rng streams",
            )
        elif resolved.startswith("random.") and last in GLOBAL_DRAWS:
            yield ctx.finding(
                node,
                "SIM002",
                f"module-level random.{last}() draws from the shared global "
                "RNG — use a repro.simcore.rng named stream",
            )
        elif resolved.startswith("numpy.random."):
            yield ctx.finding(
                node,
                "SIM002",
                f"{resolved}() bypasses the seeded stream registry — use "
                "RngRegistry.np_stream(name)",
            )


# --------------------------------------------------------------------------
# SIM003 — buffer-pool leaks
# --------------------------------------------------------------------------

#: Receiver names that look like a NativeBufferPool.
POOL_RECEIVER_HINTS = ("pool", "native")


def _field_of(parent: ast.AST, child: ast.AST) -> Optional[str]:
    for name, value in ast.iter_fields(parent):
        if value is child:
            return name
        if isinstance(value, list) and child in value:
            return name
    return None


def _cond_ancestors(
    node: ast.AST, func: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Tuple[frozenset, bool]:
    """(conditional ancestor ids, is-inside-a-finally-block).

    Try/With bodies are transparent (control always flows through);
    If/For/While bodies and except handlers are conditional.
    """
    conds = set()
    in_finally = False
    current = node
    while current is not func:
        parent = parents.get(current)
        if parent is None:
            break
        fieldname = _field_of(parent, current)
        if isinstance(parent, (ast.If, ast.While, ast.For)) and fieldname in (
            "body",
            "orelse",
        ):
            conds.add(id(parent))
        elif isinstance(parent, ast.ExceptHandler):
            conds.add(id(parent))
        elif isinstance(parent, ast.Try) and fieldname == "finalbody":
            in_finally = True
        current = parent
    return frozenset(conds), in_finally


def _is_pool_get(node: ast.AST) -> Optional[str]:
    """Receiver display name if ``node`` is ``<pool-ish>.get(...)``."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
    ):
        return None
    receiver = astutil.dotted_name(node.func.value)
    tail = astutil.last_segment(receiver).lstrip("_").lower()
    if any(hint in tail for hint in POOL_RECEIVER_HINTS):
        return receiver or tail
    return None


def check_sim003(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.in_src:
        return
    for func in astutil.function_defs(ctx.tree):
        body_nodes = list(astutil.own_body_nodes(func))
        acquisitions = []
        for node in body_nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                receiver = _is_pool_get(node.value)
                if receiver is not None:
                    acquisitions.append((node.targets[0].id, node, receiver))
        if not acquisitions:
            continue
        for var, assign, receiver in acquisitions:
            yield from _check_acquisition(ctx, func, body_nodes, var, assign, receiver)


def _check_acquisition(ctx, func, body_nodes, var, assign, receiver):
    puts: List[ast.Call] = []
    escaped = False
    for node in body_nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "put"
            and any(isinstance(a, ast.Name) and a.id == var for a in node.args)
        ):
            puts.append(node)
    put_arg_ids = {
        id(a) for call in puts for a in call.args
        if isinstance(a, ast.Name) and a.id == var
    }
    for node in body_nodes:
        if not (
            isinstance(node, ast.Name)
            and node.id == var
            and isinstance(node.ctx, ast.Load)
            and id(node) not in put_arg_ids
        ):
            continue
        parent = ctx.parents.get(node)
        # Ownership transfer: returned/yielded, stored into an
        # attribute/subscript/container, aliased, or passed to a call.
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            escaped = True
        elif isinstance(parent, ast.Call) and node in parent.args:
            escaped = True
        elif isinstance(parent, ast.keyword):
            escaped = True
        elif isinstance(parent, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            escaped = True
        elif isinstance(parent, ast.Assign) and parent.value is node:
            escaped = True  # alias or attribute store — stop tracking
        # plain uses (var.data, var[i]) keep ownership local
    if escaped:
        return
    if not puts:
        yield ctx.finding(
            assign,
            "SIM003",
            f"{var!r} acquired from {receiver}.get() is never released via "
            "put() and never escapes this function (pool leak)",
        )
        return
    get_conds, _ = _cond_ancestors(assign, func, ctx.parents)
    put_chains = [_cond_ancestors(p, func, ctx.parents) for p in puts]
    any_in_finally = any(in_fin for _, in_fin in put_chains)
    unconditional = any(
        in_fin or conds <= get_conds for conds, in_fin in put_chains
    )
    if not unconditional:
        yield ctx.finding(
            assign,
            "SIM003",
            f"{var!r} acquired from {receiver}.get() is released only on "
            "some control-flow paths — put() it unconditionally or in a "
            "finally block",
        )
        return
    if not any_in_finally:
        first_put_line = min(p.lineno for p in puts)
        for node in body_nodes:
            if (
                isinstance(node, ast.Raise)
                and assign.lineno < node.lineno < first_put_line
            ):
                yield ctx.finding(
                    assign,
                    "SIM003",
                    f"{var!r} acquired from {receiver}.get() may leak on the "
                    f"exception path raised at line {node.lineno} — release "
                    "it in a finally block",
                )
                return


# --------------------------------------------------------------------------
# SIM004 — simulated-time hazards
# --------------------------------------------------------------------------


def check_sim004(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare) and ctx.in_src:
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                for operand in [node.left, *node.comparators]:
                    dotted = astutil.dotted_name(operand)
                    if dotted is not None and dotted.endswith(".now"):
                        yield ctx.finding(
                            node,
                            "SIM004",
                            f"float equality against {dotted} — simulated "
                            "times accumulate rounding; compare with a "
                            "tolerance or use >= / <=",
                        )
                        break
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "timeout" and node.args:
                value = astutil.literal_number(node.args[0])
                if value is not None and value < 0:
                    yield ctx.finding(
                        node,
                        "SIM004",
                        f"timeout({value:g}) schedules into the past — "
                        "delays must be >= 0",
                    )
            elif node.func.attr == "schedule":
                for kw in node.keywords:
                    if kw.arg == "delay":
                        value = astutil.literal_number(kw.value)
                        if value is not None and value < 0:
                            yield ctx.finding(
                                node,
                                "SIM004",
                                f"schedule(delay={value:g}) schedules into "
                                "the past — delays must be >= 0",
                            )


# --------------------------------------------------------------------------
# SIM005 — discarded processes / bare generator calls
# --------------------------------------------------------------------------


def check_sim005(ctx: LintContext) -> Iterator[Finding]:
    gen_names = astutil.generator_function_names(ctx.tree)
    for func in astutil.function_defs(ctx.tree):
        body_nodes = list(astutil.own_body_nodes(func))
        for node in body_nodes:
            # x = env.process(...)  where x is never used afterwards:
            # the author captured a handle they meant to wait on.
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id != "_"
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "process"
            ):
                receiver = astutil.last_segment(
                    astutil.dotted_name(node.value.func.value)
                ).lstrip("_")
                if receiver != "env":
                    continue
                var = node.targets[0].id
                used = any(
                    isinstance(other, ast.Name)
                    and other.id == var
                    and isinstance(other.ctx, ast.Load)
                    for other in body_nodes
                )
                if not used:
                    yield ctx.finding(
                        node,
                        "SIM005",
                        f"process handle {var!r} is never awaited or used — "
                        "yield it, or drop the assignment if fire-and-forget "
                        "is intended",
                    )
    # Bare statement call of a local generator function: creates the
    # generator and throws it away — the classic forgotten
    # env.process(...) wrapper.
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        name = None
        if isinstance(call.func, ast.Name) and call.func.id in gen_names:
            name = call.func.id
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in gen_names
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            name = call.func.attr
        if name is not None:
            yield ctx.finding(
                node,
                "SIM005",
                f"bare call to generator function {name!r} does nothing — "
                "wrap it in env.process(...) or iterate it",
            )


# --------------------------------------------------------------------------
# SIM006 — cost-model bypass
# --------------------------------------------------------------------------


def check_sim006(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.in_src:
        return
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "charge"
            and len(node.args) >= 2
        ):
            continue
        receiver = astutil.last_segment(astutil.dotted_name(node.func.value))
        if not receiver.lstrip("_").lower().endswith("ledger"):
            continue
        value = astutil.literal_number(node.args[1])
        if value is not None and value != 0:
            yield ctx.finding(
                node,
                "SIM006",
                f"charge of literal {value:g}us bypasses the calibration "
                "model — derive costs from repro.calibration constants",
            )


# --------------------------------------------------------------------------
# SIM007 — fault-injection determinism
# --------------------------------------------------------------------------

#: Approved draw/seed entry points of repro.simcore.rng.
_RNG_ENTRY_POINTS = ("stream", "np_stream", "named_stream", "RngRegistry",
                     "stable_seed")


def _volatile_seed_source(node: ast.AST) -> Optional[str]:
    """Name of a run-varying subexpression feeding an RNG, if any."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in ("hash", "id")
        ):
            return f"{sub.func.id}()"
        dotted = astutil.dotted_name(sub)
        if dotted and dotted.endswith(".now"):
            return dotted
    return None


def check_sim007(ctx: LintContext) -> Iterator[Finding]:
    if not rule_applies("SIM007", ctx.posix, ctx.in_src):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolved_name(node.func, ctx.aliases) or ""
        last = astutil.last_segment(resolved)
        if resolved.startswith("random.") or resolved.startswith("numpy.random."):
            # Even a *seeded* private Random is wrong here: its draw
            # order is not isolated per fault rule, so adding one rule
            # reshuffles every other rule's outcomes.
            yield ctx.finding(
                node,
                "SIM007",
                f"{resolved}() in seeded-schedule code — fault injectors and "
                "RPC schedulers must draw only from repro.simcore.rng named "
                "streams (RngRegistry.stream(name))",
            )
        elif last in _RNG_ENTRY_POINTS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                source = _volatile_seed_source(arg)
                if source is not None:
                    yield ctx.finding(
                        node,
                        "SIM007",
                        f"{last}(...) fed from {source}: varies between runs "
                        "— injected and sweep schedules must derive from a "
                        "fixed seed via stable_seed(...)",
                    )
                    break


# --------------------------------------------------------------------------
# SIM008 — byte-copy coercion on the zero-copy path
# --------------------------------------------------------------------------

#: The serialization/transport layers hold the zero-copy invariant: a
#: message travels as bytearray/memoryview views until the transport
#: boundary.  A ``bytes(...)`` coercion inside them silently
#: materializes a full copy of the buffer.


def check_sim008(ctx: LintContext) -> Iterator[Finding]:
    if not rule_applies("SIM008", ctx.posix, ctx.in_src):
        return
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "bytes"
            and len(node.args) == 1
            and not node.keywords
        ):
            continue
        arg = node.args[0]
        # bytes(4) preallocates, bytes(b"..") / bytes("s", ..) are
        # literal conversions — neither copies a live message buffer.
        if isinstance(arg, ast.Constant):
            continue
        yield ctx.finding(
            node,
            "SIM008",
            "bytes(...) on the zero-copy serialization path materializes "
            "a full copy — forward the bytearray/memoryview unchanged, or "
            "mark an intentional transport-boundary snapshot with "
            "`# sim-lint: disable=SIM008`",
        )


# --------------------------------------------------------------------------
# SIM009 — same-timestamp shared-state hazards (whole-program)
# --------------------------------------------------------------------------


def _access_sort_key(access: dataflow.AttrAccess):
    return (
        access.func.module.path,
        getattr(access.node, "lineno", 1),
        getattr(access.node, "col_offset", 0),
    )


def check_sim009(pctx: ProgramContext) -> Iterator[Finding]:
    """Two process bodies touch the same attribute at the same timestamp.

    A hazard is any ``(class, attr)`` written by one spawned body and
    written or read by a *different* concurrent body (a distinct body,
    or a second instance of a multi-spawned body) — exactly the state
    that makes same-timestamp event order observable and blocks the
    event-queue restructure (ROADMAP item 1).  Exempt: writes where
    every writer is a literal increment (commutes), and writes under a
    revalidation guard (every interleaving converges).
    """
    callgraph = pctx.callgraph
    bodies = dataflow.spawned_bodies(pctx.program, callgraph)
    table: Dict[Tuple[str, str], Dict[FunctionInfo, List[dataflow.AttrAccess]]] = {}
    for body in bodies:
        for key, accesses in dataflow.body_effects(body, callgraph).items():
            table.setdefault(key, {})[body] = accesses
    for cls_name, attr in sorted(table):
        per_body = table[(cls_name, attr)]
        writers: Dict[FunctionInfo, List[dataflow.AttrAccess]] = {}
        readers: Dict[FunctionInfo, List[dataflow.AttrAccess]] = {}
        for body, accesses in per_body.items():
            writes = [
                a for a in accesses
                if a.kind in ("write", "incr") and not a.guarded
            ]
            reads = [a for a in accesses if a.kind == "read"]
            if writes:
                writers[body] = writes
            if reads:
                readers[body] = reads
        if not writers:
            continue
        all_incr = all(
            a.kind == "incr" for writes in writers.values() for a in writes
        )
        conflicts: Set[FunctionInfo] = set()
        if not all_incr:
            if len(writers) >= 2:
                conflicts.update(writers)
            else:
                only = next(iter(writers))
                if bodies[only].multi:
                    conflicts.add(only)
        for reader in readers:
            for writer in writers:
                if reader is not writer or bodies[writer].multi:
                    conflicts.add(reader)
                    conflicts.add(writer)
        if not conflicts:
            continue
        anchor = min(
            (a for b in writers for a in writers[b] if b in conflicts),
            key=_access_sort_key,
        )
        module = anchor.func.module
        if not rule_applies("SIM009", module.posix, module.in_src):
            continue
        names = sorted(body.display for body in conflicts)
        multi_note = (
            " (multiple concurrent instances)"
            if len(names) == 1 else ""
        )
        yield pctx.finding(
            module,
            anchor.node,
            "SIM009",
            f"same-timestamp shared-state hazard: {cls_name}.{attr} is "
            f"shared by process bod{'y' if len(names) == 1 else 'ies'} "
            f"{', '.join(names)}{multi_note} with a write and no event "
            "ordering in between — reordering same-timestamp events would "
            "change results (blocks the event-queue restructure)",
        )


# --------------------------------------------------------------------------
# SIM010 — hot-reload staleness (whole-program)
# --------------------------------------------------------------------------

#: Conf keys the operator plane can change at runtime.  Mirrors
#: ``repro.rpc.server.Server.QOS_KEYS`` union
#: ``repro.rpc.failover.FailoverProxy.RELOADABLE_KEYS`` union
#: ``repro.rpc.mux.ConnectionMux.RELOADABLE_KEYS`` union
#: ``repro.net.verbs.AdaptiveTransport.RELOADABLE_KEYS`` (asserted in
#: tests/lint) — the keys ``reconfigure_qos``/``ReloadPlan`` rewires
#: while the sim runs, the client failover retry policy the proxy
#: re-reads per attempt, the mux in-flight window the sender
#: revalidates per batch, and the adaptive-transport arm/confidence
#: keys the eager/rendezvous chooser revalidates per send.
RELOADABLE_CONF_KEYS = frozenset(
    {
        "ipc.callqueue.fair.weights",
        "decay-scheduler.thresholds",
        "ipc.client.failover.max.attempts",
        "ipc.client.failover.sleep.base",
        "ipc.client.failover.sleep.max",
        "ipc.client.failover.retry.policy",
        "ipc.client.failover.jitter",
        "ipc.client.async.max-inflight",
        "ipc.ib.adaptive.enabled",
        "ipc.ib.adaptive.confidence",
    }
)


def check_sim010(pctx: ProgramContext) -> Iterator[Finding]:
    """A reloadable conf key is cached at init without a subscription.

    PR 6 made reloads real: ``reconfigure_qos`` rewrites these keys
    mid-run.  A class that reads one into an attribute during
    ``__init__`` and never calls ``Configuration.subscribe`` keeps
    serving the stale value and silently ignores the operator.
    """
    for module in pctx.program.modules:
        if not rule_applies("SIM010", module.posix, module.in_src):
            continue
        for cls in module.classes.values():
            caches = [
                cache
                for cache in dataflow.conf_caches(cls, pctx.callgraph)
                if cache.key in RELOADABLE_CONF_KEYS
            ]
            if not caches:
                continue
            if dataflow.class_subscribes(cls, pctx.callgraph, pctx.program):
                continue
            for cache in caches:
                yield pctx.finding(
                    module,
                    cache.node,
                    "SIM010",
                    f"hot-reload staleness: {cls.name} caches reloadable "
                    f"conf key '{cache.key}' into self.{cache.attr} at init "
                    "without a Configuration.subscribe listener — runtime "
                    "reconfigure_qos/ReloadPlan updates are silently ignored",
                )


# --------------------------------------------------------------------------
# SIM011 — serialization symmetry (whole-program)
# --------------------------------------------------------------------------


def check_sim011(pctx: ProgramContext) -> Iterator[Finding]:
    """Encoder/decoder pairs whose wire sequences don't mirror.

    For every class defining both ``write(self, out)`` and
    ``read_fields(self, inp)``, the ordered ``write_*`` token sequence
    must mirror the ``read_*`` sequence (loops with loops, optional
    blocks with optional blocks).  Opaque control flow stops the
    comparison rather than guessing.
    """
    for pair in dataflow.serialization_pairs(pctx.program):
        module = pair.cls.module
        if not rule_applies("SIM011", module.posix, module.in_src):
            continue
        mismatch = dataflow.compare_shapes(pair.write_shape, pair.read_shape)
        if mismatch is not None:
            yield pctx.finding(
                module,
                pair.reader.node,
                "SIM011",
                f"serialization asymmetry in {pair.cls.name}: {mismatch} — "
                f"write() emits [{dataflow.render_shape(pair.write_shape)}] "
                "but read_fields() consumes "
                f"[{dataflow.render_shape(pair.read_shape)}]",
            )


#: rule code -> per-file checker, in report order.
CHECKERS = {
    "SIM001": check_sim001,
    "SIM002": check_sim002,
    "SIM003": check_sim003,
    "SIM004": check_sim004,
    "SIM005": check_sim005,
    "SIM006": check_sim006,
    "SIM007": check_sim007,
    "SIM008": check_sim008,
}

#: rule code -> whole-program checker (runs once per lint invocation
#: over the collected Program, not once per file).
PROGRAM_CHECKERS = {
    "SIM009": check_sim009,
    "SIM010": check_sim010,
    "SIM011": check_sim011,
}
