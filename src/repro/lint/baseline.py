"""Baseline files: grandfather existing findings, fail only on new ones.

The baseline is a committed JSON document keyed by
``(rule, path, message)`` — line numbers are excluded so edits above a
grandfathered finding do not resurrect it.  Matching is count-aware: a
baseline entry absorbs at most as many findings as were recorded.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def load(path: "str | Path") -> Counter:
    """Load a baseline into a Counter of baseline keys."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {doc.get('version')!r}"
        )
    counts: Counter = Counter()
    for entry in doc.get("findings", []):
        counts[(entry["rule"], entry["path"], entry["message"])] += 1
    return counts


def write(path: "str | Path", findings: List[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(doc["findings"])


def split(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, grandfathered)."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old


def stale_entries(
    findings: List[Finding], baseline: Counter
) -> List[Tuple[Tuple[str, str, str], int]]:
    """Baseline entries no longer matched by any finding.

    Returns ``(key, unmatched_count)`` pairs, sorted.  A stale entry
    means the grandfathered problem was fixed (or its message changed):
    the ratchet (``--check``) fails so the entry gets pruned instead of
    rotting — and silently re-absorbing a *regression* later.
    """
    remaining = Counter(baseline)
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
    return sorted(
        (key, count) for key, count in remaining.items() if count > 0
    )
