"""Project-wide symbol table and call graph (pass 1 of the engine).

The whole-program rules (SIM009-SIM011) need to reason across module
boundaries: which generator bodies are spawned as simulation processes,
which methods those bodies reach, and which classes define paired
encoder/decoder methods.  This module builds that picture from the
parsed ASTs of *every* linted file:

* :class:`ModuleInfo` / :class:`ClassInfo` / :class:`FunctionInfo` —
  the symbol table, one entry per parsed definition;
* :class:`Program` — the collection plus name indexes;
* :class:`CallGraph` — resolved call edges with a *dynamic dispatch
  fallback*: a call through an untyped receiver (``self.call_queue
  .take()``) maps onto every class that defines the method, filtered
  by a receiver-name hint so ``scheduler.charge()`` does not smear its
  effects over unrelated classes.

Everything stays purely syntactic, in the spirit of
:mod:`repro.lint.astutil`: no imports are executed, resolution favours
precision (dropping an edge) over recall (inventing one), and cycles in
the graph are handled by plain visited-set reachability.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint import astutil


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  # "<module-posix>::Class.method" or "<module-posix>::func"
    module: "ModuleInfo"
    cls: Optional["ClassInfo"]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_generator: bool

    @property
    def display(self) -> str:
        if self.cls is not None:
            return f"{self.cls.name}.{self.name}"
        return self.name

    def __hash__(self) -> int:
        return hash(self.qualname)

    def __eq__(self, other) -> bool:
        return isinstance(other, FunctionInfo) and self.qualname == other.qualname

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.display}>"


@dataclass
class ClassInfo:
    """One class definition with its directly-defined methods."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.module.posix, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.name}>"


@dataclass
class ModuleInfo:
    """One parsed module: tree, scoping facts, and its definitions."""

    path: str  # as given on the command line (used in findings)
    posix: str  # normalized absolute posix path (used for scoping)
    tree: ast.Module
    in_src: bool
    lines: List[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModuleInfo {self.path}>"


def collect_module(source_tree: ast.Module, path: str, posix: str,
                   in_src: bool, lines: List[str]) -> ModuleInfo:
    """Build the symbol table of one parsed module."""
    module = ModuleInfo(
        path=path,
        posix=posix,
        tree=source_tree,
        in_src=in_src,
        lines=lines,
        aliases=astutil.build_alias_map(source_tree),
        parents=astutil.build_parent_map(source_tree),
    )
    for node in source_tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                name=node.name,
                qualname=f"{posix}::{node.name}",
                module=module,
                cls=None,
                node=node,
                is_generator=astutil.is_generator_function(node),
            )
            module.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                name=node.name,
                module=module,
                node=node,
                base_names=[
                    astutil.last_segment(astutil.dotted_name(base))
                    for base in node.bases
                    if astutil.dotted_name(base) is not None
                ],
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        name=item.name,
                        qualname=f"{posix}::{cls.name}.{item.name}",
                        module=module,
                        cls=cls,
                        node=item,
                        is_generator=astutil.is_generator_function(item),
                    )
            module.classes[node.name] = cls
    return module


class Program:
    """Every collected module plus cross-module name indexes."""

    def __init__(self, modules: List[ModuleInfo]):
        self.modules: List[ModuleInfo] = modules
        #: class name -> definitions (collisions across modules kept).
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: bare method name -> every method defined under that name.
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: bare top-level function name -> definitions.
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            for cls in module.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.methods_by_name.setdefault(method.name, []).append(method)
            for func in module.functions.values():
                self.functions_by_name.setdefault(func.name, []).append(func)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules:
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    def resolve_method(self, cls: ClassInfo, name: str,
                       _seen: Optional[Set[int]] = None) -> Optional[FunctionInfo]:
        """Look a method up through the class and its known bases."""
        seen = _seen if _seen is not None else set()
        if id(cls) in seen:
            return None
        seen.add(id(cls))
        method = cls.methods.get(name)
        if method is not None:
            return method
        for base_name in cls.base_names:
            for base in self.classes_by_name.get(base_name, ()):
                found = self.resolve_method(base, name, seen)
                if found is not None:
                    return found
        return None

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Direct and transitive subclasses known to the program."""
        out: List[ClassInfo] = []
        frontier = [cls]
        seen: Set[int] = {id(cls)}
        while frontier:
            current = frontier.pop()
            for module in self.modules:
                for candidate in module.classes.values():
                    if id(candidate) in seen:
                        continue
                    if current.name in candidate.base_names:
                        seen.add(id(candidate))
                        out.append(candidate)
                        frontier.append(candidate)
        return out


#: Dynamic-dispatch fallback: when a receiver's type is unknown, a call
#: maps onto every class defining the method *if* there are at most this
#: many candidates; beyond that, only candidates whose class name
#: contains the receiver hint are kept (precision over recall).
DISPATCH_FALLBACK_LIMIT = 2


def _receiver_hint(dotted: Optional[str]) -> str:
    """Normalized last receiver segment: ``self.call_queue`` -> ``callqueue``."""
    return astutil.last_segment(dotted).lstrip("_").replace("_", "").lower()


class CallGraph:
    """Resolved call edges: FunctionInfo -> callee FunctionInfos."""

    def __init__(self, program: Program):
        self.program = program
        self.edges: Dict[FunctionInfo, List[FunctionInfo]] = {}
        #: callee -> did any call site reach it through shared state
        #: (``self`` / ``self.attr`` receivers or plain function calls)
        #: rather than a locally-created object?  SIM009 only propagates
        #: attribute effects along shared edges: state behind a local
        #: constructor call is private to the calling process body.
        self.shared_edges: Dict[FunctionInfo, List[Tuple[FunctionInfo, bool]]] = {}
        for func in program.iter_functions():
            self.shared_edges[func] = self._resolve_calls(func)
            self.edges[func] = [callee for callee, _ in self.shared_edges[func]]

    # -- resolution ---------------------------------------------------------
    def _local_method_aliases(self, func: FunctionInfo) -> Dict[str, Tuple[str, str]]:
        """Locals bound to method references: name -> (receiver, method).

        Covers the server's hot-path idioms::

            queue_take = self.call_queue.take       # attribute reference
            queue_get = getattr(self.call_queue, "get", None)
        """
        aliases: Dict[str, Tuple[str, str]] = {}
        for node in astutil.own_body_nodes(func.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            target = node.targets[0].id
            value = node.value
            if isinstance(value, ast.Attribute):
                receiver = astutil.dotted_name(value.value)
                if receiver is not None:
                    aliases[target] = (receiver, value.attr)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "getattr"
                and len(value.args) >= 2
                and isinstance(value.args[1], ast.Constant)
                and isinstance(value.args[1].value, str)
            ):
                receiver = astutil.dotted_name(value.args[0])
                if receiver is not None:
                    aliases[target] = (receiver, value.args[1].value)
        return aliases

    def _local_instance_types(self, func: FunctionInfo) -> Dict[str, ClassInfo]:
        """Locals assigned a direct constructor call: name -> class."""
        types: Dict[str, ClassInfo] = {}
        for node in astutil.own_body_nodes(func.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            callee = astutil.last_segment(astutil.dotted_name(node.value.func))
            candidates = self.program.classes_by_name.get(callee, ())
            if len(candidates) == 1:
                types[node.targets[0].id] = candidates[0]
        return types

    def _dispatch_fallback(self, method_name: str,
                           receiver: Optional[str]) -> List[FunctionInfo]:
        candidates = self.program.methods_by_name.get(method_name, [])
        if len(candidates) <= DISPATCH_FALLBACK_LIMIT:
            return list(candidates)
        hint = _receiver_hint(receiver)
        if not hint:
            return []
        return [
            m for m in candidates
            if m.cls is not None and hint in m.cls.name.lower()
        ]

    def resolve_call(self, func: FunctionInfo, call: ast.Call,
                     aliases: Optional[Dict[str, Tuple[str, str]]] = None,
                     local_types: Optional[Dict[str, ClassInfo]] = None,
                     ) -> List[FunctionInfo]:
        """Candidate callees of one call expression inside ``func``."""
        program = self.program
        target = call.func
        if isinstance(target, ast.Name):
            name = target.id
            if aliases and name in aliases:
                receiver, method = aliases[name]
                return self._resolve_method_call(func, receiver, method,
                                                 local_types)
            # Same-module function or class constructor.
            local_fn = func.module.functions.get(name)
            if local_fn is not None:
                return [local_fn]
            local_cls = func.module.classes.get(name)
            if local_cls is not None:
                init = program.resolve_method(local_cls, "__init__")
                return [init] if init is not None else []
            # Imported function/class.
            imported = func.module.aliases.get(name)
            if imported is not None:
                tail = astutil.last_segment(imported)
                for fn in program.functions_by_name.get(tail, ()):
                    return [fn]
                for cls in program.classes_by_name.get(tail, ()):
                    init = program.resolve_method(cls, "__init__")
                    return [init] if init is not None else []
            return []
        if isinstance(target, ast.Attribute):
            receiver = astutil.dotted_name(target.value)
            return self._resolve_method_call(func, receiver, target.attr,
                                             local_types)
        return []

    def _resolve_method_call(self, func: FunctionInfo, receiver: Optional[str],
                             method: str,
                             local_types: Optional[Dict[str, ClassInfo]],
                             ) -> List[FunctionInfo]:
        program = self.program
        if receiver == "self" and func.cls is not None:
            resolved = program.resolve_method(func.cls, method)
            if resolved is not None:
                # Dynamic dispatch: a subclass may override the method.
                overrides = [
                    sub.methods[method]
                    for sub in program.subclasses_of(func.cls)
                    if method in sub.methods
                ]
                return [resolved, *overrides]
            return self._dispatch_fallback(method, receiver)
        if receiver is not None and local_types and receiver in local_types:
            resolved = program.resolve_method(local_types[receiver], method)
            if resolved is not None:
                return [resolved]
        if receiver is not None and "." not in receiver:
            # ClassName.method(...) — explicit class receiver.
            for cls in program.classes_by_name.get(receiver, ()):
                resolved = program.resolve_method(cls, method)
                if resolved is not None:
                    return [resolved]
        return self._dispatch_fallback(method, receiver)

    def resolve_call_in(self, func: FunctionInfo,
                        call: ast.Call) -> List[FunctionInfo]:
        """Resolve one call with ``func``'s local aliases in scope."""
        return self.resolve_call(
            func, call,
            aliases=self._local_method_aliases(func),
            local_types=self._local_instance_types(func),
        )

    def _call_receiver(self, func: FunctionInfo, call: ast.Call,
                       aliases: Dict[str, Tuple[str, str]]) -> Optional[str]:
        """Receiver dotted name of a call, through local method aliases."""
        target = call.func
        if isinstance(target, ast.Attribute):
            return astutil.dotted_name(target.value)
        if isinstance(target, ast.Name) and target.id in aliases:
            return aliases[target.id][0]
        return None

    def _resolve_calls(self, func: FunctionInfo) -> List[Tuple[FunctionInfo, bool]]:
        aliases = self._local_method_aliases(func)
        local_types = self._local_instance_types(func)
        out: List[Tuple[FunctionInfo, bool]] = []
        index: Dict[str, int] = {}
        for node in astutil.own_body_nodes(func.node):
            if not isinstance(node, ast.Call):
                continue
            receiver = self._call_receiver(func, node, aliases)
            for callee in self.resolve_call(func, node, aliases, local_types):
                if receiver is None:
                    # Plain name call: a same-module/imported function is
                    # a neutral pass-through; a constructor creates a
                    # fresh (body-private) object.
                    shared = callee.name != "__init__"
                else:
                    shared = receiver == "self" or receiver.startswith("self.")
                slot = index.get(callee.qualname)
                if slot is None:
                    index[callee.qualname] = len(out)
                    out.append((callee, shared))
                elif shared and not out[slot][1]:
                    out[slot] = (callee, True)
        return out

    # -- traversal ----------------------------------------------------------
    def reachable(self, start: FunctionInfo) -> List[FunctionInfo]:
        """Every function reachable from ``start`` (cycle-safe BFS)."""
        seen: Set[str] = {start.qualname}
        order: List[FunctionInfo] = [start]
        frontier = [start]
        while frontier:
            current = frontier.pop(0)
            for callee in self.edges.get(current, ()):
                if callee.qualname not in seen:
                    seen.add(callee.qualname)
                    order.append(callee)
                    frontier.append(callee)
        return order
