"""Command line interface: ``python -m repro.lint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint import engine
from repro.lint.findings import RULES

DEFAULT_BASELINE = "lint-baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulation-safety static analysis: per-file rules "
        "SIM001-SIM008 plus the whole-program pass (call graph + dataflow) "
        "for SIM009-SIM011.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE}; silently skipped if absent)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if it exists",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="prune baseline entries that no longer match any finding "
        "(keeps matched entries; never adds new findings) and exit 0",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="ratchet mode: also fail when a baseline entry no longer "
        "matches any finding (stale entry — run --update-baseline)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        metavar="S",
        default=None,
        help="fail if the lint pass itself takes longer than S wall-clock "
        "seconds (CI budget for the whole-program pass)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="SIM00x",
        dest="rules",
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        metavar="NAME",
        default=None,
        help="extra directory names to skip while recursing (fixtures, "
        "__pycache__ etc. are always skipped; explicit file arguments "
        "are always linted)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(RULES.items()):
            print(f"{code}  {summary}")
        return 0

    excluded = set(engine.DEFAULT_EXCLUDED_DIRS)
    excluded.update(args.exclude or ())
    if args.rules:
        unknown = sorted(set(r.upper() for r in args.rules) - set(RULES))
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}")
    started = time.monotonic()
    try:
        files = engine.iter_python_files(args.paths, excluded_dirs=excluded)
        findings = engine.lint_paths(
            args.paths,
            excluded_dirs=excluded,
            rules=[r.upper() for r in args.rules] if args.rules else None,
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))
    elapsed = time.monotonic() - started

    if args.write_baseline:
        count = baseline_mod.write(args.baseline, findings)
        print(f"repro.lint: wrote {count} finding(s) to {args.baseline}")
        return 0

    grandfathered: List = []
    stale: List = []
    if not args.no_baseline and Path(args.baseline).is_file():
        recorded = baseline_mod.load(args.baseline)
        new, grandfathered = baseline_mod.split(findings, recorded)
        stale = baseline_mod.stale_entries(findings, recorded)
    else:
        new = findings

    if args.update_baseline:
        count = baseline_mod.write(args.baseline, grandfathered)
        print(
            f"repro.lint: pruned {sum(c for _, c in stale)} stale entr"
            f"{'y' if sum(c for _, c in stale) == 1 else 'ies'}, kept "
            f"{count} in {args.baseline}"
        )
        return 0

    over_budget = args.max_seconds is not None and elapsed > args.max_seconds
    stale_failure = args.check and stale

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": len(files),
                    "findings": [f.to_json() for f in new],
                    "grandfathered": len(grandfathered),
                    "stale_baseline_entries": [
                        {"rule": rule, "path": path, "message": message,
                         "count": count}
                        for (rule, path, message), count in stale
                    ],
                    "elapsed_seconds": round(elapsed, 3),
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        if stale_failure:
            for (rule, path, message), count in stale:
                print(
                    f"repro.lint: stale baseline entry ({count}x): "
                    f"{rule} {path}: {message}"
                )
            print(
                "repro.lint: baseline is stale — the grandfathered "
                "finding(s) above were fixed; run --update-baseline to prune"
            )
        summary = Counter(f.rule for f in new)
        if new:
            by_rule = ", ".join(f"{c} {r}" for r, c in sorted(summary.items()))
            print(
                f"repro.lint: {len(new)} finding(s) in {len(files)} file(s) "
                f"({by_rule}; {len(grandfathered)} baselined)"
            )
        else:
            print(
                f"repro.lint: clean — {len(files)} file(s), "
                f"{len(grandfathered)} baselined finding(s)"
            )
    if over_budget:
        print(
            f"repro.lint: wall-clock budget exceeded — {elapsed:.2f}s > "
            f"--max-seconds {args.max_seconds:g}",
            file=sys.stderr,
        )
    return 1 if (new or stale_failure or over_budget) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
