"""Small AST helpers shared by the lint rules.

Everything here is purely syntactic — there is no type inference.  The
rules trade a little precision for zero dependencies: names are
resolved through the module's own ``import`` statements, so
``import numpy as np; np.random.rand()`` resolves to
``numpy.random.rand`` while an unrelated local ``np`` does not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional


def build_alias_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names their imports bind.

    ``import time``             -> {"time": "time"}
    ``import numpy as np``      -> {"np": "numpy"}
    ``from time import time``   -> {"time": "time.time"}
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolved_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name with the leading segment resolved through imports."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def last_segment(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def contains_hash_call(node: ast.AST) -> bool:
    """True if any subexpression calls the ``hash`` builtin."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "hash"
        ):
            return True
    return False


def literal_number(node: ast.AST) -> Optional[float]:
    """Value of an expression built purely from numeric literals.

    Handles constants, unary +/-, and binary arithmetic whose operands
    are themselves literal-only.  Returns None for anything involving a
    name, attribute, or call.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp):
        left = literal_number(node.left)
        right = literal_number(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
        except ZeroDivisionError:
            return None
    return None


def build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator_function(func: ast.AST) -> bool:
    """True if the def's *own* body contains yield / yield from."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in own_body_nodes(func)
    )


def generator_function_names(tree: ast.Module) -> set:
    """Names of every generator function/method defined in the module."""
    return {
        func.name for func in function_defs(tree) if is_generator_function(func)
    }
