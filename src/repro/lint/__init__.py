"""``repro.lint`` — simulation-safety static analysis.

The reproduction's whole value is that latencies *emerge*
deterministically from mechanistic code on a simulated clock.  This
package mechanically enforces the invariants that make that true:

========  ==============================================================
SIM001    wall-clock reads (``time.time``, ``datetime.now``) outside the
          experiments harness
SIM002    nondeterministic randomness: module-level ``random.*`` draws,
          ``hash()``-derived seeds (PYTHONHASHSEED!), unseeded
          ``numpy.random`` — use :mod:`repro.simcore.rng` streams
SIM003    ``NativeBufferPool.get()`` without a ``put()`` on every path,
          including exception paths
SIM004    simulated-time hazards: float ``==`` on clock values,
          negative ``timeout``/``schedule`` delays
SIM005    discarded process handles / bare generator-function calls
          that silently do nothing
SIM006    cost-model bypass: charging a :class:`~repro.mem.cost.CostLedger`
          with numeric literals instead of calibrated constants
========  ==============================================================

Run it as ``python -m repro.lint src tests``.  Findings can be
suppressed inline (``# sim-lint: disable=SIM001``), per file
(``# sim-lint: disable-file=SIM002``), or grandfathered in a committed
baseline file (``lint-baseline.json``).

Rules marked *src-scoped* (SIM003, SIM004's equality check, SIM006)
apply only to simulation source under ``src/`` — unit tests may
legitimately leak pool buffers or assert exact clock values.
"""

from repro.lint.findings import Finding, RULES
from repro.lint.engine import lint_paths, lint_source, lint_file

__all__ = ["Finding", "RULES", "lint_paths", "lint_source", "lint_file"]
