"""Finding records and the rule catalogue."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: rule code -> one-line summary (the authoritative rule list; the
#: implementations live in :mod:`repro.lint.rules`).
RULES = {
    "SIM000": "file cannot be linted (syntax error) or malformed "
              "sim-lint directive",
    "SIM001": "wall-clock read outside the experiments harness",
    "SIM002": "nondeterministic randomness (use repro.simcore.rng streams)",
    "SIM003": "buffer-pool acquisition without a release on every path",
    "SIM004": "simulated-time hazard (float == on times, negative delay)",
    "SIM005": "discarded process handle / bare generator call",
    "SIM006": "cost charged with a literal instead of calibration constants",
    "SIM007": "fault injector or RPC scheduler drawing outside "
              "repro.simcore.rng named streams",
    "SIM008": "bytes(...) copy on the zero-copy serialization path",
    "SIM009": "same-timestamp shared-state hazard between process bodies "
              "(whole-program)",
    "SIM010": "reloadable conf key cached at init without "
              "Configuration.subscribe (whole-program)",
    "SIM011": "encoder/decoder wire sequences do not mirror "
              "(whole-program)",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by the baseline file.

        Line/column are deliberately excluded so unrelated edits above a
        grandfathered finding do not un-baseline it.
        """
        return (self.rule, self.path, self.message)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
