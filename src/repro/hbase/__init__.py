"""HBase substrate: region servers, WAL on HDFS, YCSB workloads.

Models HBase 0.90.3 far enough for the paper's Fig. 8: client ops
travel over Hadoop RPC (HBase's RPC was a fork of it) to 16 region
servers; puts append to a WAL whose group-commit pipeline replicates to
DataNodes; memstores flush to HDFS files and periodically compact —
both paths issuing the NameNode RPCs whose acceleration gives RPCoIB
its mix-workload win.

Transport configurations mirror the figure:

* ``HBase(sockets)`` — ops fully over socket RPC;
* ``HBaseoIB`` — the RDMA get/put design of reference [7]: payloads
  move between registered buffers over IB while the op envelope stays
  on socket RPC;
* ``HBaseoIB-RPCoIB`` — envelope over RPCoIB too (the paper's
  integrated design).
"""

from repro.hbase.protocol import HRegionInterface
from repro.hbase.regionserver import HRegionServer
from repro.hbase.client import HTable
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ycsb import YcsbResult, YcsbWorkload, run_ycsb

__all__ = [
    "HBaseCluster",
    "HRegionInterface",
    "HRegionServer",
    "HTable",
    "YcsbResult",
    "YcsbWorkload",
    "run_ycsb",
]
