"""HRegionServer: memstore, WAL group commit, flushes, compactions.

The server-side op costs are where Fig. 8's curve shapes come from:

* Get — memstore/block-cache hit or an HFile block read off the local
  spindle; the hit rate falls as the record count grows (the declining
  Fig. 8(a) curves);
* Put — WAL append through a group-commit pipeline replicated to two
  peer DataNodes, then memstore insert; memstore pressure triggers
  flushes, and every few flushes a compaction — both write HDFS files
  whose ``create``/``addBlock``/``complete`` NameNode traffic rides the
  Hadoop RPC engine under test (the paper's explanation for the 24 %
  mix-workload gain).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.calibration import IB_RDMA, NetworkSpec
from repro.config import Configuration
from repro.hbase.protocol import GetWritable, HRegionInterface, PutWritable, ResultWritable
from repro.net.fabric import Fabric, Node
from repro.rpc.engine import RPC
from repro.rpc.metrics import RpcMetrics
from repro.simcore import Store
from repro.simcore.rng import Random, named_stream

#: HFile block size (what one cache miss reads off disk)
HFILE_BLOCK = 64 * 1024
#: flushes per region between compactions (0.90.x minor compaction cadence)
FLUSHES_PER_COMPACTION = 3
#: group-commit sync overhead beyond the pipeline transfer
WAL_SYNC_OVERHEAD_US = 40.0


class HRegionServer(HRegionInterface):
    """One region server daemon."""

    _ids = itertools.count(0)

    def __init__(
        self,
        fabric: Fabric,
        node: Node,
        hdfs,
        conf: Optional[Configuration] = None,
        rpc_spec: Optional[NetworkSpec] = None,
        payload_rdma: bool = False,
        wal_data_spec: Optional[NetworkSpec] = None,
        metrics: Optional[RpcMetrics] = None,
        rng: Optional[Random] = None,
        port: int = 60020,
    ):
        assert rpc_spec is not None, "HRegionServer needs the RPC network spec"
        self.index = next(self._ids)
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.hdfs = hdfs
        self.conf = conf or Configuration()
        self.model = fabric.model
        self.rng = rng or named_stream(f"regionserver:{node.name}")
        #: HBaseoIB: payloads move over RDMA, not inside the RPC message
        self.payload_rdma = payload_rdma
        self.wal_data_spec = wal_data_spec or rpc_spec
        self.metrics = metrics
        server_conf = self.conf.copy().set(
            "ipc.server.handler.count",
            self.conf.get_int("hbase.regionserver.handler.count"),
        )
        self.server = RPC.get_server(
            fabric, node, port, self, HRegionInterface, rpc_spec,
            conf=server_conf, metrics=metrics, name=f"regionserver@{node.name}",
        )
        # -- storage state ------------------------------------------------
        self.memstore_bytes = 0
        self.flush_threshold = self.conf.get_int("hbase.hregion.memstore.flush.size")
        #: bytes of HFiles this server serves (set by the YCSB preload)
        self.store_bytes = 0
        #: rows resident in this server's key range (set by preload)
        self.resident_rows = 0
        self.block_cache_bytes = self.conf.get_int(
            "hbase.blockcache.size", 200 * 1024 * 1024
        )
        #: rows resident in the memstore (recent puts always hit)
        self.memstore_rows: set = set()
        self.flushes = 0
        self.compactions = 0
        self.gets = 0
        self.puts = 0
        self.cache_misses = 0
        self.put_blocks = 0
        self._flush_in_progress = False
        self._flush_done = None
        #: HDFS paths of live store files (compaction inputs)
        self._store_files: List[str] = []
        # -- WAL group commit ----------------------------------------------
        self._wal_queue: Store = Store(self.env)
        self._wal_writer = self.env.process(
            self._wal_loop(), name=f"wal:{node.name}"
        )
        self._wal_peers: List[Node] = []
        self._value_cache: Dict[str, bytes] = {}
        # storage-pressure gauges in the fabric-wide metrics registry
        registry = fabric.metrics
        self._gauge_memstore = registry.gauge(
            "hbase.regionserver.memstore_bytes", node=node.name
        )
        self._gauge_store_files = registry.gauge(
            "hbase.regionserver.store_files", node=node.name
        )
        self._gauge_flush_active = registry.gauge(
            "hbase.regionserver.flush_in_progress", node=node.name
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @property
    def address(self):
        return self.server.address

    def choose_wal_peers(self, candidates: List[Node]) -> None:
        """Pick the two remote DataNodes of this server's WAL pipeline."""
        others = [n for n in candidates if n is not self.node]
        self._wal_peers = self.rng.sample(others, min(2, len(others)))

    def preload(self, store_bytes: int, resident_rows: int = 0) -> None:
        """Install the YCSB dataset share served by this region server."""
        self.store_bytes = store_bytes
        self.resident_rows = resident_rows

    @property
    def local_disk(self):
        datanode = (
            self.hdfs.datanodes.get(self.node.name) if self.hdfs is not None else None
        )
        if datanode is not None:
            return datanode.disk
        raise RuntimeError(f"{self.node.name}: no co-located DataNode spindle")

    # ------------------------------------------------------------------
    # HRegionInterface
    # ------------------------------------------------------------------
    def get(self, request: GetWritable):
        self.gets += 1
        yield self.env.timeout(self.model.compute.hbase_get_cpu_us)
        found = True
        if request.row not in self.memstore_rows and not self._cache_hit():
            self.cache_misses += 1
            yield from self._read_hfile_block()
        value = self._value_cache.get(request.row, b"\x00" * 1024)
        if self.payload_rdma:
            # HBaseoIB: ship the value through registered buffers; the
            # RPC response carries only the envelope.
            yield self.fabric.env.timeout(
                self.model.software.jni_crossing_us + self.model.software.verbs_post_us
            )
            return ResultWritable(b"", detached_bytes=len(value), found=found)
        return ResultWritable(value, found=found)

    def put(self, request: PutWritable):
        self.puts += 1
        nbytes = request.payload_bytes
        yield self.env.timeout(self.model.compute.hbase_put_cpu_us)
        # WAL append + group-commit sync
        sync_done = self.env.event()
        yield self._wal_queue.put((nbytes, sync_done))
        yield sync_done
        # memstore insert
        self.memstore_rows.add(request.row)
        if request.value:
            self._value_cache[request.row] = request.value
        self.memstore_bytes += nbytes
        self._gauge_memstore.set(self.memstore_bytes)
        if self.memstore_bytes >= self.flush_threshold and not self._flush_in_progress:
            self._flush_in_progress = True
            self._gauge_flush_active.set(1)
            self._flush_done = self.env.event()
            self.env.process(self._flush(), name=f"flush:{self.node.name}")
        elif self._flush_in_progress and self.memstore_bytes >= 2 * self.flush_threshold:
            # memstore blocking: the region refuses writes until the
            # in-flight flush lands (HBase's updatesBlockedMs) — this is
            # how flush latency (and its NameNode RPCs) throttles puts.
            self.put_blocks += 1
            yield self._flush_done
        return ResultWritable(b"", found=True)

    # ------------------------------------------------------------------
    # WAL group commit
    # ------------------------------------------------------------------
    def _wal_loop(self):
        while True:
            first = yield self._wal_queue.get()
            batch = [first]
            while len(self._wal_queue) > 0:
                batch.append((yield self._wal_queue.get()))
            total = sum(nbytes for nbytes, _ in batch)
            yield from self._wal_sync(total)
            for _, done in batch:
                done.succeed()

    def _wal_sync(self, nbytes: int):
        """Replicate one WAL batch: local spindle + two remote peers."""
        disk = self.model.disk
        writes = []
        with self.local_disk.request() as grant:
            yield grant
            yield self.env.timeout(nbytes / disk.seq_write)
        for peer in self._wal_peers:
            if self.wal_data_spec.rdma_capable:
                yield self.env.timeout(
                    self.model.software.jni_crossing_us
                    + self.model.software.verbs_post_us
                )
            else:
                yield self.env.timeout(
                    self.model.software.socket_syscall_us
                    + self.model.memory.copy_us(nbytes)
                )
            writes.append(
                self.fabric.transfer(self.node, peer, nbytes, self.wal_data_spec)
            )
        for write in writes:
            yield write
        yield self.env.timeout(WAL_SYNC_OVERHEAD_US)

    # ------------------------------------------------------------------
    # reads, flushes, compactions
    # ------------------------------------------------------------------
    def _cache_hit(self) -> bool:
        """LRU block-cache model with cold-start warmth.

        A block can only hit if (a) it fits in the cache alongside the
        working set and (b) it has been read before (the cache starts
        cold).  The warmth term ``1 - exp(-reads/rows)`` is the expected
        fraction of rows already touched after ``reads`` uniform reads —
        this is what makes Fig. 8(a)'s throughput fall as the record
        count grows.
        """
        import math

        if self.store_bytes <= 0:
            return True
        capacity = min(1.0, self.block_cache_bytes / self.store_bytes)
        if self.resident_rows > 0:
            warmth = 1.0 - math.exp(-self.gets / self.resident_rows)
        else:
            warmth = 1.0
        return self.rng.random() < capacity * warmth

    def _read_hfile_block(self):
        """One block-cache miss.

        The YCSB dataset (6-19 MB per server) sits in the OS page cache
        after the load phase, so a miss is usually read+decode+copy of
        one HFile block (CPU-bound), with an occasional real disk access
        when flush/compaction traffic evicted the page.
        """
        yield self.env.timeout(
            400.0 + HFILE_BLOCK * self.model.memory.memcpy_per_byte_us
        )
        # ~25% of misses touch the spindle; charged as the expected
        # share per miss (deterministic, for cross-config comparability)
        disk = self.model.disk
        with self.local_disk.request() as grant:
            yield grant
            yield self.env.timeout(
                0.25 * (disk.seek_us / 4.0 + HFILE_BLOCK / disk.seq_read)
            )

    def _flush(self):
        """Write the memstore snapshot as an HFile on HDFS."""
        snapshot = self.memstore_bytes
        self.memstore_bytes = 0
        self._gauge_memstore.set(0)
        self.memstore_rows.clear()
        self.flushes += 1
        flush_id = self.flushes
        dfs = self.hdfs.client(self.node)
        path = f"/hbase/{self.node.name}/hfile-{flush_id:05d}"
        yield dfs.write_file(path, max(snapshot, 1024))
        self._store_files.append(path)
        self._gauge_store_files.set(len(self._store_files))
        self.store_bytes += snapshot
        self._flush_in_progress = False
        self._gauge_flush_active.set(0)
        if self._flush_done is not None and not self._flush_done.triggered:
            self._flush_done.succeed()
        if len(self._store_files) >= FLUSHES_PER_COMPACTION:
            yield from self._compact()

    def _compact(self):
        """Minor compaction: rewrite the accumulated store files."""
        inputs, self._store_files = self._store_files, []
        self._gauge_store_files.set(0)
        if not inputs:
            return
        self.compactions += 1
        span = min(self.store_bytes, FLUSHES_PER_COMPACTION * self.flush_threshold)
        if span <= 0:
            return
        disk = self.model.disk
        with self.local_disk.request() as grant:
            yield grant
            yield self.env.timeout(span / disk.seq_read)
        dfs = self.hdfs.client(self.node)
        yield dfs.write_file(
            f"/hbase/{self.node.name}/compacted-{self.compactions:05d}", span
        )
        for path in inputs:
            yield dfs.delete(path)
