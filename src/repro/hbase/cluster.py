"""HBaseCluster: region servers over HDFS, plus client factories.

Builds the paper's Fig. 8 testbed: 16 region servers co-located with
DataNodes, 16 client nodes, HMaster on a separate node (the master is
pure bookkeeping here — region locations are static)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.calibration import NetworkSpec
from repro.config import Configuration
from repro.hbase.client import HTable
from repro.hbase.regionserver import HRegionServer
from repro.hdfs.cluster import HdfsCluster
from repro.net.fabric import Fabric, Node
from repro.rpc.metrics import RpcMetrics
from repro.simcore.rng import Random, named_stream


class HBaseCluster:
    """One HBase deployment on top of an HdfsCluster."""

    def __init__(
        self,
        fabric: Fabric,
        regionserver_nodes: List[Node],
        hdfs: HdfsCluster,
        rpc_spec: NetworkSpec,
        conf: Optional[Configuration] = None,
        payload_rdma: bool = False,
        wal_data_spec: Optional[NetworkSpec] = None,
        rng: Optional[Random] = None,
        metrics: Optional[RpcMetrics] = None,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.hdfs = hdfs
        self.conf = conf or Configuration()
        self.rpc_spec = rpc_spec
        self.payload_rdma = payload_rdma
        self.metrics = metrics or RpcMetrics()
        rng = rng or named_stream("hbase-cluster")
        self._rng = rng
        self.regionservers: List[HRegionServer] = []
        for node in regionserver_nodes:
            self.regionservers.append(
                HRegionServer(
                    fabric,
                    node,
                    hdfs,
                    conf=self.conf,
                    rpc_spec=rpc_spec,
                    payload_rdma=payload_rdma,
                    wal_data_spec=wal_data_spec,
                    metrics=self.metrics,
                    rng=Random(rng.getrandbits(32)),
                )
            )
        nodes = [server.node for server in self.regionservers]
        for server in self.regionservers:
            server.choose_wal_peers(nodes)

    def preload(self, record_count: int, record_bytes: int = 1024) -> None:
        """Install a YCSB dataset of ``record_count`` x ``record_bytes``."""
        per_server = record_count * record_bytes // len(self.regionservers)
        rows_per_server = record_count // len(self.regionservers)
        for server in self.regionservers:
            server.preload(per_server, rows_per_server)

    def table(self, node: Node, record_bytes: int = 1024) -> HTable:
        return HTable(
            self.fabric,
            node,
            self.regionservers,
            self.rpc_spec,
            conf=self.conf,
            payload_rdma=self.payload_rdma,
            metrics=self.metrics,
            rng=Random(self._rng.getrandbits(32)),
            record_bytes=record_bytes,
        )

    def totals(self) -> Dict[str, int]:
        """Aggregate op/maintenance counters across region servers."""
        return {
            "gets": sum(s.gets for s in self.regionservers),
            "puts": sum(s.puts for s in self.regionservers),
            "flushes": sum(s.flushes for s in self.regionservers),
            "compactions": sum(s.compactions for s in self.regionservers),
            "cache_misses": sum(s.cache_misses for s in self.regionservers),
        }
