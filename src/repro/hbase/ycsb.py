"""YCSB: the Yahoo! Cloud Serving Benchmark, as Fig. 8 runs it.

Workloads are read/write mixes over a keyspace of ``record_count``
1 KB records, driven by concurrent clients; the harness reports
aggregate throughput (Kops/sec) and latency tallies, exactly the
numbers the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hbase.cluster import HBaseCluster
from repro.net.fabric import Node
from repro.simcore import Tally
from repro.simcore.rng import Random


@dataclass
class YcsbWorkload:
    """One YCSB workload definition."""

    name: str
    read_fraction: float
    record_count: int
    operation_count: int
    record_bytes: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read fraction {self.read_fraction} out of [0,1]")
        if self.record_count <= 0 or self.operation_count <= 0:
            raise ValueError("record/operation counts must be positive")

    @staticmethod
    def get_100(records: int, ops: int) -> "YcsbWorkload":
        return YcsbWorkload("100% Get", 1.0, records, ops)

    @staticmethod
    def put_100(records: int, ops: int) -> "YcsbWorkload":
        return YcsbWorkload("100% Put", 0.0, records, ops)

    @staticmethod
    def mix_50_50(records: int, ops: int) -> "YcsbWorkload":
        return YcsbWorkload("50%-Get-50%-Put", 0.5, records, ops)


@dataclass
class YcsbResult:
    """Aggregate outcome of one YCSB run."""

    workload: str
    operations: int
    elapsed_us: float
    get_latency: Tally
    put_latency: Tally
    totals: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        return self.operations / self.elapsed_us * 1000.0

    @property
    def mean_get_us(self) -> float:
        return self.get_latency.mean if self.get_latency.count else 0.0

    @property
    def mean_put_us(self) -> float:
        return self.put_latency.mean if self.put_latency.count else 0.0


def run_ycsb(
    cluster: HBaseCluster,
    client_nodes: List[Node],
    workload: YcsbWorkload,
    seed: int = 99,
    warmup_ops_per_client: int = 20,
    threads_per_node: int = 4,
) -> object:
    """Process: drive ``workload`` from ``client_nodes``; value: YcsbResult.

    Each client node runs ``threads_per_node`` closed-loop YCSB threads
    (one outstanding op each) sharing the node's HTable connection, and
    the operation count is split evenly across all threads.
    """
    env = cluster.env
    cluster.preload(workload.record_count, workload.record_bytes)
    rng = Random(seed)
    get_latency = Tally("ycsb.get")
    put_latency = Tally("ycsb.put")
    window = {"start": None, "end": 0.0, "ops": 0}
    total_threads = len(client_nodes) * threads_per_node
    ops_per_client = max(1, workload.operation_count // total_threads)
    tables = {}

    def client_proc(env, node, client_seed):
        local = Random(client_seed)
        if node.name not in tables:
            tables[node.name] = cluster.table(node, workload.record_bytes)
        table = tables[node.name]

        def one_op(measure: bool):
            row = f"user{local.randrange(workload.record_count):012d}"
            is_read = local.random() < workload.read_fraction
            start = env.now
            if is_read:
                yield table.get(row)
                if measure:
                    get_latency.observe(env.now - start)
            else:
                yield table.put(row)
                if measure:
                    put_latency.observe(env.now - start)

        for _ in range(warmup_ops_per_client):
            yield from one_op(measure=False)
        if window["start"] is None:
            window["start"] = env.now
        for _ in range(ops_per_client):
            yield from one_op(measure=True)
            window["ops"] += 1
        window["end"] = env.now

    def runner(env):
        procs = [
            env.process(
                client_proc(env, node, rng.getrandbits(32)),
                name=f"ycsb:{node.name}",
            )
            for node in client_nodes
            for _ in range(threads_per_node)
        ]
        yield env.all_of(procs)
        elapsed = window["end"] - window["start"]
        if elapsed <= 0:
            raise RuntimeError("YCSB measurement window collapsed")
        return YcsbResult(
            workload=workload.name,
            operations=window["ops"],
            elapsed_us=elapsed,
            get_latency=get_latency,
            put_latency=put_latency,
            totals=cluster.totals(),
        )

    return env.process(runner(env), name=f"ycsb:{workload.name}")
