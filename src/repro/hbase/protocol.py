"""HBase RPC protocol (HRegionInterface, 0.90.x style)."""

from __future__ import annotations

from typing import Optional

from repro.io.data_input import DataInput
from repro.io.data_output import DataOutput
from repro.io.writable import Writable, writable_factory
from repro.rpc.protocol import RpcProtocol


@writable_factory
class GetWritable(Writable):
    """A Get request: table row key (plus family/qualifier flavor)."""

    def __init__(self, row: str = "", family: str = "f", qualifier: str = "q"):
        self.row = row
        self.family = family
        self.qualifier = qualifier

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.row)
        out.write_utf(self.family)
        out.write_utf(self.qualifier)

    def read_fields(self, inp: DataInput) -> None:
        self.row = inp.read_utf()
        self.family = inp.read_utf()
        self.qualifier = inp.read_utf()


@writable_factory
class PutWritable(Writable):
    """A Put request: row key + value bytes (possibly detached to RDMA)."""

    def __init__(self, row: str = "", value: bytes = b"", detached_bytes: int = 0):
        self.row = row
        self.value = value
        #: when the HBaseoIB design carries the payload over RDMA, the
        #: envelope holds only its length.
        self.detached_bytes = detached_bytes

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.row)
        out.write_int(self.detached_bytes)
        out.write_int(len(self.value))
        out.write_bytes_raw(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.row = inp.read_utf()
        self.detached_bytes = inp.read_int()
        length = inp.read_int()
        if length:
            inp.ledger.charge_heap_alloc(length)
        self.value = inp.read_fully(length)

    @property
    def payload_bytes(self) -> int:
        return self.detached_bytes or len(self.value)


@writable_factory
class ResultWritable(Writable):
    """A Get response: value bytes (or a detached-length envelope)."""

    def __init__(self, value: bytes = b"", detached_bytes: int = 0, found: bool = True):
        self.value = value
        self.detached_bytes = detached_bytes
        self.found = found

    def write(self, out: DataOutput) -> None:
        out.write_boolean(self.found)
        out.write_int(self.detached_bytes)
        out.write_int(len(self.value))
        out.write_bytes_raw(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.found = inp.read_boolean()
        self.detached_bytes = inp.read_int()
        length = inp.read_int()
        if length:
            inp.ledger.charge_heap_alloc(length)
        self.value = inp.read_fully(length)


class HRegionInterface(RpcProtocol):
    """Client <-> HRegionServer operations."""

    PROTOCOL_NAME = "hbase.HRegionInterface"
    VERSION = 26

    def get(self, request):
        raise NotImplementedError

    def put(self, request):
        raise NotImplementedError
