"""HTable: the HBase client, with the three Fig. 8 transport flavours."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.calibration import IB_RDMA, NetworkSpec
from repro.config import Configuration
from repro.hbase.protocol import GetWritable, HRegionInterface, PutWritable
from repro.net.fabric import Fabric, Node
from repro.rpc.engine import RPC
from repro.rpc.metrics import RpcMetrics
from repro.simcore.rng import Random, named_stream


class HTable:
    """Client handle to one table spread over the region servers.

    Rows are routed by hash to the region server owning that key range
    (the region map is fetched from the master once and cached — we
    model it as a static registry, as YCSB's steady state sees it).
    """

    def __init__(
        self,
        fabric: Fabric,
        node: Node,
        regionservers: List,
        rpc_spec: NetworkSpec,
        conf: Optional[Configuration] = None,
        payload_rdma: bool = False,
        metrics: Optional[RpcMetrics] = None,
        rng: Optional[Random] = None,
        record_bytes: int = 1024,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.regionservers = list(regionservers)
        if not self.regionservers:
            raise ValueError("HTable needs at least one region server")
        self.payload_rdma = payload_rdma
        self.record_bytes = record_bytes
        self.model = fabric.model
        self.rng = rng or named_stream(f"htable:{node.name}")
        self.client = RPC.get_client(
            fabric, node, rpc_spec, conf=conf, metrics=metrics,
            name=f"htable@{node.name}",
        )
        self._proxies: Dict[int, object] = {}

    def _region_for(self, row: str):
        # stable routing (Python's str hash is salted per process)
        import zlib

        index = zlib.crc32(row.encode()) % len(self.regionservers)
        return index, self.regionservers[index]

    def _proxy(self, index: int):
        if index not in self._proxies:
            self._proxies[index] = RPC.get_proxy(
                HRegionInterface, self.regionservers[index].address, self.client
            )
        return self._proxies[index]

    # ------------------------------------------------------------------
    def get(self, row: str):
        """Process: read one row; value is the ResultWritable."""
        return self.env.process(self._get_proc(row), name=f"hget:{self.node.name}")

    def _get_proc(self, row: str):
        index, server = self._region_for(row)
        result = yield self._proxy(index).get(GetWritable(row))
        if result.detached_bytes:
            # HBaseoIB: the value arrives via RDMA from the server's
            # registered buffer — wire time on the IB RDMA path.
            yield self.fabric.transfer(
                server.node, self.node, result.detached_bytes, IB_RDMA
            )
            yield self.env.timeout(self.model.software.cq_poll_us)
        return result

    def put(self, row: str, value: Optional[bytes] = None):
        """Process: write one row; value defaults to ``record_bytes``."""
        payload = value if value is not None else b"\x5a" * self.record_bytes
        return self.env.process(
            self._put_proc(row, payload), name=f"hput:{self.node.name}"
        )

    def _put_proc(self, row: str, payload: bytes):
        index, server = self._region_for(row)
        if self.payload_rdma:
            # Ship the payload through registered buffers first; the
            # RPC request carries only the envelope.
            yield self.env.timeout(
                self.model.software.jni_crossing_us
                + self.model.software.verbs_post_us
            )
            yield self.fabric.transfer(self.node, server.node, len(payload), IB_RDMA)
            request = PutWritable(row, b"", detached_bytes=len(payload))
        else:
            request = PutWritable(row, payload)
        return (yield self._proxy(index).put(request))
