"""Native InfiniBand verbs transport: queue pairs over registered memory.

Models the communication layer RPCoIB sits on (Section III): eager
send/recv for messages at or below the adaptive threshold, RDMA for
larger ones.  The NIC moves bytes between *registered* buffers without
host CPU involvement — the sender pays only the JNI crossing and the
work-request post; the receiver pays a completion-queue poll.  Payload
bytes are snapshotted at delivery (the model's stand-in for the NIC
DMA into a pre-posted receive buffer), so the sender may recycle its
pooled buffer immediately after the send completes.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple, Optional, Union

from repro.calibration import CostModel, IB_EAGER, IB_RDMA
from repro.mem.native_pool import NativeBuffer
from repro.mem.predictor import SizePredictor
from repro.net.fabric import Fabric, Node
from repro.simcore import Store
from repro.simcore.process import Process


def classify(length: int, threshold: int) -> bool:
    """THE eager/rendezvous split (Section III-D): True = eager.

    Every layer that needs the protocol decision — the verbs post, the
    client's trace tags, the server responder — must come through
    here, so predictor-driven choice can never drift between what a
    trace says and what the clock was charged.
    """
    return length <= threshold


class ProtocolChoice(NamedTuple):
    """A resolved transport decision for one message.

    ``eager``     — send/recv vs RDMA (from :func:`classify`);
    ``preposted`` — rendezvous buffer advertisement was pre-posted
                    (predictor-driven; pays ``rdma_prepost_us`` instead
                    of the full ``rdma_rendezvous_us`` handshake);
    ``source``    — "static" (threshold only), "predictor" (confident
                    prediction), or "fallback" (predictor enabled but
                    not yet confident for this call kind).
    """

    eager: bool
    preposted: bool = False
    source: str = "static"


class QPBrokenError(ConnectionError):
    """A work request was posted on (or delivered to) a broken QP."""


class QPBreak:
    """Poison message delivered through a broken QP's completion path.

    A Store getter cannot be failed from outside, so a QP break is
    surfaced the way real verbs surface it: as an error completion
    polled off the CQ.  Receive loops must isinstance-check for it.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = "qp broken"):
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QPBreak {self.reason!r}>"


class VerbsMessage(NamedTuple):
    """A completed receive: payload snapshot + how it travelled."""

    data: bytes
    length: int
    eager: bool
    context: object = None  # opaque sender tag (e.g. call id)


class Endpoint:
    """One side's IB context on a node: identity + inbound completions."""

    _next_id = 0

    def __init__(self, fabric: Fabric, node: Node, name: str = ""):
        Endpoint._next_id += 1
        self.id = Endpoint._next_id
        self.fabric = fabric
        self.env = fabric.env
        self.node = node
        self.name = name or f"ep{self.id}@{node.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Endpoint {self.name}>"


class QueuePair:
    """One direction-pair of a connected QP; create both via ``pair``."""

    def __init__(self, local: Endpoint, remote: Endpoint):
        self.local = local
        self.remote = remote
        self.env = local.env
        self.fabric = local.fabric
        self.model: CostModel = local.fabric.model
        self.inbound: Store = Store(self.env)
        #: when set, completions are delivered as ``(qp, message)`` into
        #: this shared store instead of ``inbound`` — the server's single
        #: completion queue multiplexing many connections.
        self.cq: Optional[Store] = None
        self.peer: Optional["QueuePair"] = None
        self.closed = False
        self.broken = False
        if self.fabric.faults is not None:
            self.fabric.faults.register_qp(self)
        self._tx_queue: Optional[Store] = None
        self._tx_worker = None
        # Process names precomputed once (send/recv spawn per message).
        self._send_name = f"ibsend:{local.name}"
        self._recv_name = f"ibrecv:{local.name}"
        self.sends = 0
        self.eager_sends = 0
        self.rdma_sends = 0
        self.preposted_sends = 0
        #: opaque owner tag (e.g. the server-side connection object).
        self.owner: object = None
        #: out-of-band trace refs (repro.obs), mirroring SimSocket's
        #: side channel: senders append to the peer's deque in post
        #: order; the receiver pops one per traced message.
        self._trace_refs: deque = deque()

    @staticmethod
    def pair(a: Endpoint, b: Endpoint) -> tuple:
        """Connect two endpoints; returns (qp_at_a, qp_at_b)."""
        qa, qb = QueuePair(a, b), QueuePair(b, a)
        qa.peer, qb.peer = qb, qa
        return qa, qb

    # -- sending ---------------------------------------------------------
    def post_send(
        self,
        data: Union[bytes, NativeBuffer],
        length: Optional[int] = None,
        rdma_threshold: int = 4096,
        context: object = None,
        trace=None,
        choice: Optional[ProtocolChoice] = None,
    ) -> Process:
        """Send ``length`` bytes of a registered buffer to the peer.

        Messages of at most ``rdma_threshold`` bytes go eager
        (send/recv); larger ones go RDMA — the Section III-D adaptive
        switch (:func:`classify`).  Callers that already resolved the
        decision (the predictor-driven adaptive transport) pass a
        :class:`ProtocolChoice` instead; ``rdma_threshold`` is then
        ignored.  The returned Process completes at *local* send
        completion (work request posted, buffer reusable: the payload is
        snapshotted); wire transfer and remote delivery continue in the
        background, strictly in order.
        """
        if self.closed:
            raise RuntimeError("post_send on closed QP")
        if self.broken:
            raise QPBrokenError(
                f"{self.local.name}->{self.remote.name}: post_send on broken QP"
            )
        view = data.data if isinstance(data, NativeBuffer) else data
        if length is None:
            length = len(view)
        if length > len(view):
            raise ValueError(f"length {length} exceeds buffer {len(view)}")
        if type(view) is bytes and length == len(view):
            payload = view  # immutable and exact: no snapshot needed
        else:
            # Single-copy DMA snapshot (slicing a bytearray first would
            # copy twice); the sender may recycle its buffer immediately.
            with memoryview(view) as dma:
                payload = bytes(dma[:length])  # sim-lint: disable=SIM008
        if choice is None:
            choice = ProtocolChoice(classify(length, rdma_threshold))
        return self.env.process(
            self._send_proc(payload, choice, context, trace),
            name=self._send_name,
        )

    def pop_trace(self):
        """Next out-of-band trace ref (FIFO, one per traced message)."""
        return self._trace_refs.popleft() if self._trace_refs else None

    def _send_proc(
        self, payload: bytes, choice: ProtocolChoice, context: object, trace=None
    ):
        sw = self.model.software
        eager = choice.eager
        spec = IB_EAGER if eager else IB_RDMA
        self.sends += 1
        if eager:
            self.eager_sends += 1
        else:
            self.rdma_sends += 1
        cost = sw.jni_crossing_us + sw.verbs_post_us + spec.host_overhead_us
        if not eager:
            if choice.preposted:
                # Predictor pre-advertised the target buffer while the
                # message was still serializing: only the doorbell/
                # notify residue remains on the critical path.
                self.preposted_sends += 1
                cost += sw.rdma_prepost_us
            else:
                # rendezvous: advertise the target buffer before the RDMA
                cost += sw.rdma_rendezvous_us
        yield self.env.timeout(cost)
        if self._tx_queue is None:
            self._tx_queue = Store(self.env)
            self._tx_worker = self.env.process(
                self._tx_loop(), name=f"ibtx:{self.local.name}"
            )
        if trace is not None and self.peer is not None:
            # A batched post (repro.rpc.mux) carries one ref per
            # sub-call, in sub-call order, as a list.
            if type(trace) is list:
                self.peer._trace_refs.extend(trace)
            else:
                self.peer._trace_refs.append(trace)
        yield self._tx_queue.put((payload, eager, context, spec))

    def _tx_loop(self):
        """NIC work-queue drain: transfers and delivers in post order."""
        while True:
            payload, eager, context, spec = yield self._tx_queue.get()
            yield self.fabric.transfer(
                self.local.node, self.remote.node, len(payload), spec
            )
            peer = self.peer
            if peer is not None and not peer.closed and not peer.broken:
                message = VerbsMessage(payload, len(payload), eager, context)
                if peer.cq is not None:
                    yield peer.cq.put((peer, message))
                else:
                    yield peer.inbound.put(message)

    # -- receiving --------------------------------------------------------
    def recv(self) -> Process:
        """Take the next completed receive; Process returns VerbsMessage.

        Charged: one completion-queue poll/wakeup.
        """
        if self.closed:
            raise RuntimeError("recv on closed QP")
        return self.env.process(self._recv_proc(), name=self._recv_name)

    def _recv_proc(self):
        message = yield self.inbound.get()
        yield self.env.timeout(self.model.software.cq_poll_us)
        return message

    @property
    def pending(self) -> int:
        """Completed-but-unpolled receives."""
        return len(self.inbound)

    def close(self) -> None:
        self.closed = True

    def break_qp(self, reason: str = "qp broken") -> None:
        """Error both directions of the QP (fault injection).

        Each side's completion path receives a :class:`QPBreak` poison
        so blocked receivers wake; subsequent ``post_send`` raises
        :class:`QPBrokenError`.
        """
        for qp in (self, self.peer):
            if qp is None or qp.broken or qp.closed:
                continue
            qp.broken = True
            poison = QPBreak(reason)
            if qp.cq is not None:
                qp.cq.put((qp, poison))
            else:
                qp.inbound.put(poison)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QueuePair {self.local.name}->{self.remote.name}>"


class AdaptiveTransport:
    """Predictor-driven eager/rendezvous selection with mispredict
    accounting — the tentpole of the message-size-adaptive transport.

    One instance per RPCoIB endpoint (client connection / server
    responder), sharing the endpoint's :class:`SizePredictor` with its
    buffer pool: the same Fig. 3 size history that sizes the
    serializer's buffer decides whether the rendezvous buffer
    advertisement can be pre-posted.

    The decision model (:meth:`choose`) runs at post time, when the
    actual serialized length is known, but scores itself against what
    the predictor said *before* serialization:

    * confident predicted-rendezvous + actual rendezvous → hit, and
      the advertisement was overlapped with serialization, so the send
      pays only ``rdma_prepost_us`` (``preposted=True``);
    * confident prediction on the wrong side of the threshold → miss
      (the actual length always wins the protocol choice — a mispredict
      costs the full handshake or a wasted advertisement, never a
      wrong-protocol send);
    * not yet confident → fall back to the static threshold, counted
      separately.

    Both ``ipc.ib.adaptive.*`` keys and the static threshold hot-reload
    via the ``conf.version`` stamp, so an operator can arm or retune
    the adaptive transport mid-run.  Metrics (``net.predictor.hits`` /
    ``misses`` / ``fallbacks``, labelled by node) are created lazily on
    first use — with the default-off configuration the metrics JSON is
    unchanged.
    """

    #: keys the transport re-reads on every conf.version change
    #: (mirrored into repro.lint.rules.RELOADABLE_CONF_KEYS — SIM010).
    RELOADABLE_KEYS = frozenset(
        {"ipc.ib.adaptive.enabled", "ipc.ib.adaptive.confidence"}
    )

    def __init__(self, conf, predictor: SizePredictor, registry=None, node=""):
        self.conf = conf
        self.predictor = predictor
        self.registry = registry
        self.node = node
        self._stamp = -1
        self._enabled = False
        self._confidence = 0
        self._threshold = 0
        self._hits = None
        self._misses = None
        self._fallbacks = None

    def _revalidate(self) -> None:
        if self.conf.version != self._stamp:
            self._enabled = self.conf.get_bool("ipc.ib.adaptive.enabled")
            self._confidence = self.conf.get_int("ipc.ib.adaptive.confidence")
            self._threshold = self.conf.get_int("rpc.ib.rdma.threshold")
            self._stamp = self.conf.version

    @property
    def enabled(self) -> bool:
        self._revalidate()
        return self._enabled

    def _count(self, which: str) -> None:
        if self.registry is None:
            return
        counter = getattr(self, f"_{which}")
        if counter is None:
            counter = self.registry.counter(
                f"net.predictor.{which}", node=self.node
            )
            setattr(self, f"_{which}", counter)
        counter.add()

    def choose(self, protocol: str, method: str, length: int) -> ProtocolChoice:
        """Resolve the transport decision for one serialized message."""
        self._revalidate()
        actual_eager = classify(length, self._threshold)
        if not self._enabled:
            return ProtocolChoice(actual_eager)
        if not self.predictor.confident(protocol, method, self._confidence):
            self._count("fallbacks")
            return ProtocolChoice(actual_eager, source="fallback")
        predicted = self.predictor.predict(protocol, method)
        predicted_eager = classify(predicted, self._threshold)
        if predicted_eager == actual_eager:
            self._count("hits")
        else:
            self._count("misses")
        # Pre-posting helps only when the predictor committed to
        # rendezvous *and* the message really goes rendezvous; a
        # predicted-eager message that turns out large pays the full
        # handshake (nothing was advertised in advance).
        preposted = not predicted_eager and not actual_eager
        return ProtocolChoice(actual_eager, preposted, source="predictor")
