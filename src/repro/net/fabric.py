"""Cluster fabric: nodes, NIC engines, and wire transfers.

Topology model: every node hangs off one non-blocking switch (both of
the paper's clusters are single-switch).  Contention therefore happens
at the endpoints — each node has one transmit and one receive engine
per fabric direction, held for the serialization time of each message.
That is exactly the resource the Fig. 5(b) incast (64 clients, one
server) stresses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.calibration import CostModel, NetworkSpec
from repro.faults import runtime as faults_runtime
from repro.mem.jvm import JvmHeap
from repro.obs import runtime as obs_runtime
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.simcore import Environment, Resource
from repro.simcore.events import Event


class Node:
    """One cluster machine: CPU cores, NIC engines, JVM-heap registry."""

    def __init__(self, env: Environment, name: str, model: CostModel, cores: int = 8):
        self.env = env
        self.name = name
        self.model = model
        self.cores = cores
        #: task/daemon compute contends here (8 physical cores).
        self.cpu = Resource(env, capacity=cores)
        #: NIC serialization engines, one per direction (full duplex).
        self.nic_tx = Resource(env, capacity=1)
        self.nic_rx = Resource(env, capacity=1)
        #: JVM heaps of daemons hosted on this node, by daemon name.
        self.heaps: Dict[str, JvmHeap] = {}

    def heap(self, daemon: str) -> JvmHeap:
        """The (created-on-demand) JVM heap of a daemon on this node."""
        if daemon not in self.heaps:
            self.heaps[daemon] = JvmHeap(self.model, name=f"{self.name}/{daemon}")
        return self.heaps[daemon]

    def __repr__(self) -> str:
        return f"<Node {self.name}>"


class Fabric:
    """The cluster: a set of nodes joined by a non-blocking switch."""

    def __init__(self, env: Environment, model: Optional[CostModel] = None):
        self.env = env
        self.model = model or CostModel.default()
        self.nodes: Dict[str, Node] = {}
        #: (node_name, port) -> ListenerSocket, maintained by net.sockets.
        self.listeners: Dict[tuple, object] = {}
        # Observability: with an ObsSession active (``--trace``), every
        # fabric gets a real tracer + an exported registry; otherwise
        # the zero-cost null tracer and a private registry.  Neither
        # ever schedules simulated events, so recording is invisible to
        # the clock.
        session = obs_runtime.current()
        if session is not None:
            self.tracer = session.tracer_for(env) or NULL_TRACER
            self.metrics = session.registry_for(env)
        else:
            self.tracer = NULL_TRACER
            self.metrics = MetricsRegistry(env)
        # Fault injection (``--faults``): with a FaultSession armed the
        # plan is scheduled on this fabric's clock; otherwise every
        # transport hook is a single ``is None`` branch (zero cost).
        fault_session = faults_runtime.current()
        self.faults = (
            fault_session.attach(self) if fault_session is not None else None
        )
        # Transfer-process names, cached per (src, dst) pair: transfers
        # spawn per wire chunk and the f-string shows up in profiles.
        self._xfer_names: Dict[tuple, str] = {}

    def add_node(self, name: str, cores: Optional[int] = None) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(
            self.env,
            name,
            self.model,
            cores=cores or self.model.compute.cores_per_node,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def add_nodes(self, prefix: str, count: int) -> list:
        return [self.add_node(f"{prefix}{i}") for i in range(count)]

    def transfer(self, src: Node, dst: Node, nbytes: int, spec: NetworkSpec) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst`` over ``spec``.

        Returns the completion event.  Charges: source NIC engine held
        for the serialization time, wire latency, destination NIC
        engine held for the deserialization time.  Local (same-node)
        transfers short-circuit through loopback.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        key = (src.name, dst.name)
        name = self._xfer_names.get(key)
        if name is None:
            name = f"xfer:{src.name}->{dst.name}"
            self._xfer_names[key] = name
        return self.env.process(self._transfer_proc(src, dst, nbytes, spec), name=name)

    def _hold(self, resource, delay_before: float, serialization_us: float):
        """Occupy a NIC engine for the serialization time (one pipeline
        side of a transfer), optionally trailing by ``delay_before``."""
        if delay_before:
            yield self.env.timeout(delay_before)
        with resource.request() as req:
            yield req
            yield self.env.timeout(serialization_us)

    def _transfer_proc(self, src: Node, dst: Node, nbytes: int, spec: NetworkSpec):
        """Returns True when the bytes arrived, False when a fault
        (crashed endpoint) swallowed them mid-flight."""
        if self.faults is not None:
            # Partitions park the transfer until heal; a crashed
            # endpoint means the bytes are lost.
            ok = yield from self.faults.wait_transferable(src, dst)
            if not ok:
                return False
        if src is dst:
            # Loopback: kernel memcpy, no NIC, tiny latency.
            yield self.env.timeout(
                1.0 + nbytes * self.model.memory.memcpy_per_byte_us
            )
            return True
        serialization_us = nbytes / spec.bandwidth
        if self.faults is not None:
            factor = self.faults.nic_factor(src.name, dst.name)
            if factor != 1.0:
                serialization_us *= factor

        # Cut-through pipeline: the receive side trails the transmit
        # side by the wire latency and both occupy their engines for the
        # serialization time; end-to-end = latency + nbytes/bw when
        # uncontended, and endpoint contention queues naturally.
        tx_side = self.env.process(
            self._hold(src.nic_tx, 0.0, serialization_us), name="hold"
        )
        rx_side = self.env.process(
            self._hold(dst.nic_rx, spec.latency_us, serialization_us), name="hold"
        )
        yield tx_side & rx_side
        if self.faults is not None and not self.faults.deliverable(src, dst):
            return False
        return True
