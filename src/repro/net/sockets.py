"""Java-sockets-over-TCP transport semantics on the simulated fabric.

Costs follow the default Hadoop RPC path the paper profiles: every
``write``/``read`` pays syscall + NIC host overhead + per-byte kernel
CPU, and the payload crosses the JVM-heap/native boundary with a
memcpy.  Stream framing is byte-accurate: receivers see a byte FIFO and
``recv(n)`` blocks until ``n`` bytes arrived, however the sender chunked
them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, NamedTuple, Optional

from repro.calibration import CostModel, NetworkSpec
from repro.net.fabric import Fabric, Node
from repro.simcore import Environment, Store
from repro.simcore.process import Process

#: One write()/read() syscall moves at most this much; bigger payloads
#: cost proportionally more syscalls (JVM SocketOutputStream loops).
SYSCALL_CHUNK = 64 * 1024


class SocketAddress(NamedTuple):
    """(node name, port) pair identifying a listening server."""

    node: str
    port: int


class ConnectionRefused(ConnectionError):
    """No listener at the requested address."""


class SocketClosed(ConnectionError):
    """Peer closed while bytes were still expected."""


class ListenerSocket:
    """Server-side accept queue bound to (node, port)."""

    def __init__(self, fabric: Fabric, node: Node, port: int):
        key = (node.name, port)
        if key in fabric.listeners:
            raise ValueError(f"port {port} already bound on {node.name}")
        self.fabric = fabric
        self.node = node
        self.port = port
        self.accept_queue: Store = Store(fabric.env)
        #: set by an RPCoIB-capable server so IB clients can bootstrap
        #: through this socket address (Section III-D).
        self.ib_service: Optional[object] = None
        fabric.listeners[key] = self

    @property
    def address(self) -> SocketAddress:
        return SocketAddress(self.node.name, self.port)

    def accept(self):
        """Event yielding the next accepted server-side SimSocket."""
        return self.accept_queue.get()

    def close(self) -> None:
        self.fabric.listeners.pop((self.node.name, self.port), None)


class SimSocket:
    """One end of an established, bidirectional byte-stream connection."""

    def __init__(
        self,
        fabric: Fabric,
        local: Node,
        remote: Node,
        spec: NetworkSpec,
        name: str = "",
    ):
        self.env: Environment = fabric.env
        self.fabric = fabric
        self.local = local
        self.remote = remote
        self.spec = spec
        self.model: CostModel = fabric.model
        self.name = name
        self.peer: Optional["SimSocket"] = None
        self._rx = bytearray()
        self._waiter = None  # (nbytes, Event) of the single blocked recv
        self._tx_queue: Optional[Store] = None
        self._tx_worker = None
        self.closed = False
        self._peer_closed = False
        #: callback fired on every delivery (selector integration).
        self.on_data: Optional[Callable[["SimSocket"], None]] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        # Process names precomputed once (send/recv spawn per message).
        self._send_name = f"send:{name}"
        self._recv_name = f"recv:{name}"
        # Cost-model coefficients prebound once per socket: the
        # send/recv cost formulas run per message and the chained
        # ``self.model.software.<coef>`` lookups dominate them.
        sw = fabric.model.software
        self._syscall_us = sw.socket_syscall_us
        self._host_overhead_us = spec.host_overhead_us
        self._cpu_per_byte_us = spec.cpu_per_byte_us
        mem = fabric.model.memory
        self._copy_base_us = mem.memcpy_base_us
        self._copy_per_byte_us = mem.memcpy_per_byte_us
        if fabric.faults is not None:
            fabric.faults.register_socket(self)
        #: out-of-band trace refs travelling with frames (repro.obs):
        #: the sender appends to the *peer's* deque in frame order, the
        #: receiver pops one per decoded call frame.  Never serialized
        #: into the byte stream, so tracing cannot change wire costs.
        self._trace_refs: deque = deque()

    # -- sending ----------------------------------------------------------
    def send(self, data, trace=None) -> Process:
        """Write ``data`` to the peer; returns the completion Process.

        ``data`` is bytes or a gather list of chunks (bytes / bytearray
        / memoryview): a list is joined into the wire image exactly once
        here, at the transport boundary — the zero-copy framing paths
        upstream never materialize the message themselves.

        The Process completes when the *local* write is done (TCP
        semantics: the kernel accepted the bytes) — charged with
        syscalls (one per 64 KB), per-message NIC host overhead, kernel
        per-byte CPU, and the JVM-heap -> native copy.  Wire transfer
        and delivery continue in the background, strictly in order.

        ``trace`` (a :class:`repro.obs.TraceRef`) rides along out of
        band and is surfaced to the receiver via :meth:`pop_trace`.
        """
        if self.closed:
            raise SocketClosed(f"{self.name}: send on closed socket")
        kind = type(data)
        if kind is list:
            data = b"".join(data)
        elif kind is not bytes:
            # Snapshot mutable buffers at the send boundary.
            data = bytes(data)  # sim-lint: disable=SIM008
        return self.env.process(self._send_proc(data, trace), name=self._send_name)

    def pop_trace(self):
        """Next out-of-band trace ref (FIFO, one per traced frame)."""
        return self._trace_refs.popleft() if self._trace_refs else None

    def _send_proc(self, data: bytes, trace=None):
        nbytes = len(data)
        # ``-(-n // chunk)`` is exact integer ceil; SYSCALL_CHUNK is a
        # power of two so it matches the float-division form bit-for-bit.
        syscalls = -(-nbytes // SYSCALL_CHUNK) or 1
        # Grouping matters: the copy term is parenthesized exactly as the
        # unfolded ``memory.copy_us(nbytes)`` call computed it, keeping
        # float addition order — and thus the clock — bit-identical.
        cost = (
            syscalls * self._syscall_us
            + self._host_overhead_us
            + nbytes * self._cpu_per_byte_us
            + (self._copy_base_us + nbytes * self._copy_per_byte_us)
        )
        yield self.env.timeout(cost)
        self.bytes_sent += len(data)
        if self._tx_queue is None:
            self._tx_queue = Store(self.env)
            self._tx_worker = self.env.process(
                self._tx_loop(), name=f"tx:{self.name}"
            )
        if trace is not None and self.peer is not None:
            # Appended in the same step as the tx enqueue below, so the
            # peer's ref order always matches frame order.  A batched
            # frame (repro.rpc.mux) carries one ref per sub-call, in
            # sub-call order, as a list.
            if type(trace) is list:
                self.peer._trace_refs.extend(trace)
            else:
                self.peer._trace_refs.append(trace)
        yield self._tx_queue.put(data)

    #: wire-delivery granularity: big writes dribble into the receiver
    #: at network speed (TCP windowing), not as one instant delivery.
    WIRE_CHUNK = 64 * 1024

    def _tx_loop(self):
        """Drains the kernel send buffer onto the wire, in order."""
        while True:
            data = yield self._tx_queue.get()
            for start in range(0, len(data), self.WIRE_CHUNK):
                chunk = data[start : start + self.WIRE_CHUNK]
                faults = self.fabric.faults
                if faults is not None:
                    retransmit_us = faults.loss_delay(
                        self.local.name, self.remote.name
                    )
                    if retransmit_us > 0.0:
                        # Lost on the wire: TCP retransmits after an RTO.
                        yield self.env.timeout(retransmit_us)
                    if faults.corrupts(self.local.name, self.remote.name):
                        # Checksum failure past TCP's ability to mask —
                        # both ends see the connection reset.
                        peer = self.peer
                        self.close()
                        if peer is not None:
                            peer.close()
                        return
                delivered = yield self.fabric.transfer(
                    self.local, self.remote, len(chunk), self.spec
                )
                if delivered is False:
                    continue  # endpoint crashed mid-flight: bytes lost
                if self.peer is not None and not self.peer.closed:
                    self.peer._deliver(chunk)

    def _deliver(self, data: bytes) -> None:
        self._rx.extend(data)
        self._wake_waiter()
        if self.on_data is not None:
            self.on_data(self)

    def _wake_waiter(self) -> None:
        if self._waiter is not None:
            nbytes, event = self._waiter
            if len(self._rx) >= nbytes or self._peer_closed:
                self._waiter = None
                event.succeed()

    # -- receiving ---------------------------------------------------------
    @property
    def available(self) -> int:
        """Bytes currently readable without blocking."""
        return len(self._rx)

    def recv(self, nbytes: int) -> Process:
        """Read exactly ``nbytes``; returns the completion Process.

        Charged on the caller's thread: syscalls + NIC host overhead +
        kernel per-byte CPU.  (The native->JVM-heap copy is *not*
        charged here — Listing 2's receive path performs it explicitly
        when it allocates the heap ByteBuffer, and the RPC server code
        models that step itself.)
        """
        if nbytes < 0:
            raise ValueError(f"negative recv size {nbytes}")
        return self.env.process(self._recv_proc(nbytes), name=self._recv_name)

    def _recv_proc(self, nbytes: int):
        while len(self._rx) < nbytes:
            if self._peer_closed:
                raise SocketClosed(
                    f"{self.name}: peer closed with {len(self._rx)}/{nbytes} bytes"
                )
            if self._waiter is not None:
                raise RuntimeError(f"{self.name}: concurrent recv on one socket")
            event = self.env.event()
            self._waiter = (nbytes, event)
            yield event
        # Single-copy extraction: slicing the bytearray first would copy
        # twice.  Both views are released before the del (a bytearray
        # with live exports cannot shrink).
        with memoryview(self._rx) as rx_view:
            data = bytes(rx_view[:nbytes])  # sim-lint: disable=SIM008
        del self._rx[:nbytes]
        syscalls = -(-nbytes // SYSCALL_CHUNK) or 1
        cost = (
            syscalls * self._syscall_us
            + self._host_overhead_us
            + nbytes * self._cpu_per_byte_us
        )
        yield self.env.timeout(cost)
        self.bytes_received += nbytes
        return data

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.peer is not None:
            self.peer._peer_closed = True
            self.peer._wake_waiter()
            if self.peer.on_data is not None:
                self.peer.on_data(self.peer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimSocket {self.name} {self.local.name}->{self.remote.name}>"


def connect(
    fabric: Fabric,
    client_node: Node,
    address: SocketAddress,
    spec: NetworkSpec,
) -> Process:
    """Open a connection to ``address``; Process returns the client socket.

    Cost: TCP handshake + Hadoop connection header
    (``socket_connect_us``) plus one small round trip on the wire.
    """
    env = fabric.env

    def proc():
        listener = fabric.listeners.get((address.node, address.port))
        if listener is None:
            raise ConnectionRefused(f"no listener at {address}")
        server_node = listener.node
        if fabric.faults is not None and fabric.faults.blocked(
            client_node.name, server_node.name
        ):
            raise ConnectionRefused(f"{address}: unreachable (fault injected)")
        yield env.timeout(fabric.model.software.socket_connect_us)
        yield fabric.transfer(client_node, server_node, 128, spec)
        client_sock = SimSocket(
            fabric, client_node, server_node, spec, name=f"c:{client_node.name}"
        )
        server_sock = SimSocket(
            fabric, server_node, client_node, spec, name=f"s:{server_node.name}"
        )
        client_sock.peer = server_sock
        server_sock.peer = client_sock
        yield listener.accept_queue.put(server_sock)
        return client_sock

    return env.process(proc(), name=f"connect:{client_node.name}->{address.node}")
