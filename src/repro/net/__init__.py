"""Simulated cluster fabric and transports.

Two transports mirror the paper's two communication paths:

* :mod:`repro.net.sockets` — Java-sockets-over-TCP semantics (works on
  1GigE, 10GigE and IPoIB): per-message syscalls, host CPU per byte,
  stream framing, JVM-heap buffer hand-off.
* :mod:`repro.net.verbs` — native InfiniBand verbs: queue pairs over
  pre-registered buffers, eager send/recv for small messages and RDMA
  for large ones, completion-queue polling, endpoint bootstrap over a
  socket channel (Section III-D).

Both run over :mod:`repro.net.fabric`, which models nodes, their NIC
transmit/receive engines (contention points) and wire transfer time.
"""

from repro.net.fabric import Fabric, Node
from repro.net.sockets import (
    ConnectionRefused,
    ListenerSocket,
    SimSocket,
    SocketAddress,
    SocketClosed,
    connect,
)
from repro.net.verbs import Endpoint, QueuePair, VerbsMessage

__all__ = [
    "ConnectionRefused",
    "Endpoint",
    "Fabric",
    "ListenerSocket",
    "Node",
    "QueuePair",
    "SimSocket",
    "SocketAddress",
    "SocketClosed",
    "VerbsMessage",
    "connect",
]
