"""Unit conventions and helpers.

* **Time** is ``float`` microseconds throughout the simulation.
* **Sizes** are ``int`` bytes.
* **Bandwidth** is bytes per microsecond (== MB/s numerically).

Helpers convert from the units papers speak in (Gbps, MB/s, ms, GB).
"""

from __future__ import annotations

# -- sizes ---------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# -- time (expressed in microseconds) -------------------------------------
USEC = 1.0
MSEC = 1000.0
SEC = 1_000_000.0


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/microsecond."""
    return value * 1e9 / 8.0 / 1e6


def mb_per_s(value: float) -> float:
    """Convert MB/s (10^6 bytes) to bytes/microsecond."""
    return value * 1e6 / 1e6


def seconds(us: float) -> float:
    """Microseconds -> seconds."""
    return us / SEC


def usec(s: float) -> float:
    """Seconds -> microseconds."""
    return s * SEC


def fmt_bytes(n: int) -> str:
    """Human-readable byte count, used by report tables."""
    if n >= GB:
        return f"{n / GB:g} GB"
    if n >= MB:
        return f"{n / MB:g} MB"
    if n >= KB:
        return f"{n / KB:g} KB"
    return f"{n} B"


def fmt_time(us: float) -> str:
    """Human-readable duration from microseconds."""
    if us >= SEC:
        return f"{us / SEC:.2f} s"
    if us >= MSEC:
        return f"{us / MSEC:.2f} ms"
    return f"{us:.1f} us"
