"""Memory-system model: where the paper's bottlenecks live.

Section II of the paper attributes the default Hadoop RPC's slowness on
fast networks to (a) repeated ``DataOutputBuffer`` reallocation+copy
during serialization (their Algorithm 1), (b) per-call heap buffer
allocation on receive, and (c) JVM-heap <-> native-IO copies.  This
package provides the accounting machinery that makes those costs
explicit and the Section III remedies: the pre-registered native buffer
pool and the history-based two-level (shadow) pool keyed on
message-size locality.
"""

from repro.mem.buddy_pool import BuddyBuffer, BuddyBufferPool
from repro.mem.cost import CostLedger, OpCounts
from repro.mem.jvm import JvmHeap
from repro.mem.native_pool import (
    NativeBuffer,
    NativeBufferPool,
    PoolExhausted,
    build_pool,
)
from repro.mem.predictor import SizePredictor, size_class_of, within_one_class
from repro.mem.shadow_pool import HistoryShadowPool

__all__ = [
    "BuddyBuffer",
    "BuddyBufferPool",
    "CostLedger",
    "HistoryShadowPool",
    "JvmHeap",
    "NativeBuffer",
    "NativeBufferPool",
    "OpCounts",
    "PoolExhausted",
    "SizePredictor",
    "build_pool",
    "size_class_of",
    "within_one_class",
]
