"""Per-call-kind message-size predictor — the Fig. 3 locality model.

Hadoop RPC exhibits **message size locality** (Figure 3 of the paper):
the last observed size of a ⟨protocol, method⟩ call kind is an
excellent predictor of the next one.  The two-level buffer pool
(:mod:`repro.mem.shadow_pool`) has always exploited this to size the
serializer's buffer; this module extracts the predictor into a shared
component so the transport layer (:mod:`repro.net.verbs`) can consult
the *same* history when choosing between the eager and rendezvous
protocols — a predicted-large message can have its rendezvous buffer
advertisement pre-posted while serialization is still running.

The predictor is pure bookkeeping: it never touches the simulated
clock, never draws randomness, and is deterministic for a given
observation sequence.  Confidence is a per-kind *streak* — consecutive
observations landing within one power-of-two size class of each other.
A transport should only act on a prediction once the streak clears its
configured minimum (``ipc.ib.adaptive.confidence``); below that it
falls back to the static threshold.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: History key: the paper indexes by the string "protocol + method".
CallKey = Tuple[str, str]

#: Default guess for a never-before-seen call kind, matching the
#: smallest native-pool size class.
DEFAULT_SIZE = 128


def size_class_of(nbytes: int) -> int:
    """Smallest power-of-two bucket holding ``nbytes`` (min 1)."""
    if nbytes < 0:
        raise ValueError(f"negative size {nbytes}")
    if nbytes <= 1:
        return 1
    return 1 << (nbytes - 1).bit_length()


def within_one_class(a: int, b: int) -> bool:
    """True when two sizes land in the same or adjacent power-of-two
    class — the locality granularity that matters to the buffer pool
    (and hence to the eager/rendezvous choice)."""
    ca = size_class_of(a).bit_length()
    cb = size_class_of(b).bit_length()
    return abs(ca - cb) <= 1


class SizePredictor:
    """Last-observed-size predictor with a per-kind confidence streak."""

    def __init__(self, default_size: int = DEFAULT_SIZE):
        if default_size < 1:
            raise ValueError(f"default_size must be >= 1, got {default_size}")
        self.default_size = default_size
        #: last observed size per call kind — the paper's history table.
        self.history: Dict[CallKey, int] = {}
        #: consecutive observations within one size class of the
        #: previous one, per call kind.
        self.streaks: Dict[CallKey, int] = {}
        self.observations = 0

    # -- prediction ----------------------------------------------------------
    def predict(self, protocol: str, method: str) -> int:
        """Last observed message size for this call kind (or default)."""
        return self.history.get((protocol, method), self.default_size)

    def confident(self, protocol: str, method: str, min_streak: int) -> bool:
        """Has this kind shown ``min_streak`` stable observations?"""
        return self.streaks.get((protocol, method), 0) >= min_streak

    # -- learning ----------------------------------------------------------
    def observe(self, protocol: str, method: str, size: int) -> None:
        """Record an observed message size for the call kind.

        The streak rises while sizes stay within one size class of the
        previous observation and resets to zero on a class jump — a
        kind that alternates tiny/huge never becomes confident, which
        is exactly when transport prediction should stand down.
        """
        key = (protocol, method)
        last = self.history.get(key)
        if last is not None and within_one_class(last, size):
            self.streaks[key] = self.streaks.get(key, 0) + 1
        else:
            self.streaks[key] = 0
        self.history[key] = size
        self.observations += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SizePredictor kinds={len(self.history)}"
            f" observations={self.observations}>"
        )
