"""History-based two-level buffer pool — Section III-C, level 2.

The *shadow pool* lives at the Java layer: it hands out
``DirectByteBuffer`` views of native-pool buffers and, crucially, keeps
a per-⟨protocol, method⟩ *message-size history*.  Because Hadoop RPC
exhibits **message size locality** (Figure 3), the last observed size
of a call kind is an excellent predictor of the next one — so the
serializer almost always receives a buffer it never has to grow.

Growth doubles through the native pool's size classes (no JVM heap
allocation, no zeroing, no GC debt); release updates the history both
upward (after growth) and downward (shrink when the buffer was
oversized), exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.calibration import CostModel
from repro.mem.cost import CostLedger
from repro.mem.native_pool import NativeBuffer, NativeBufferPool
from repro.mem.predictor import CallKey, SizePredictor


class HistoryShadowPool:
    """JVM-layer shadow of the native pool with size-history prediction.

    The size history itself lives in a shared :class:`SizePredictor` so
    the transport layer can consult the same table when choosing
    between eager and rendezvous (``repro.net.verbs``); pass one in to
    share it, or let the pool own a private instance.
    """

    def __init__(
        self,
        native_pool: NativeBufferPool,
        default_size: int = 128,
        predictor: Optional[SizePredictor] = None,
    ):
        self.native = native_pool
        self.default_size = default_size
        self.predictor = predictor or SizePredictor(default_size=default_size)
        # locality statistics (reported by the Fig. 3 experiment)
        self.acquires = 0
        self.grows = 0
        self.predictions = 0
        self.prediction_hits = 0

    @property
    def history(self) -> Dict[CallKey, int]:
        """The predictor's per-kind size table (compat alias)."""
        return self.predictor.history

    # -- prediction ----------------------------------------------------------
    def predicted_size(self, protocol: str, method: str) -> int:
        """Last observed message size for this call kind (or default)."""
        return self.predictor.predict(protocol, method)

    # -- acquire/grow/release ---------------------------------------------------
    def acquire(self, protocol: str, method: str, ledger: CostLedger) -> NativeBuffer:
        """Get a direct buffer sized by the call kind's history."""
        self.acquires += 1
        size = self.predicted_size(protocol, method)
        buf = self.native.get(size, ledger)
        ledger.charge_direct_wrap()
        return buf

    def grow(
        self, buffer: NativeBuffer, used: int, ledger: CostLedger
    ) -> NativeBuffer:
        """Double the buffer via the pool, preserving ``used`` bytes.

        The copy is native-to-native (no JVM involvement): only memcpy
        cost, no allocation/zeroing/GC.
        """
        if used > buffer.capacity:
            raise ValueError(f"used {used} exceeds capacity {buffer.capacity}")
        self.grows += 1
        bigger = self.native.get(max(buffer.capacity * 2, 1), ledger)
        bigger.data[:used] = buffer.data[:used]
        ledger.charge_copy(used)
        ledger.charge_direct_wrap()
        self.native.put(buffer, ledger)
        return bigger

    def release(
        self,
        buffer: NativeBuffer,
        protocol: str,
        method: str,
        used: int,
        ledger: CostLedger,
        grown: bool = False,
    ) -> None:
        """Return the buffer and update the size history for the call kind.

        * if the serializer had to grow, the history rises to ``used``;
        * if the buffer was oversized (``used`` maps to a smaller size
          class), the history *shrinks* to ``used``;
        * a prediction "hit" is an acquire that neither grew nor
          overshot by a whole size class — the message-size-locality
          payoff the micro-benchmark analysis in Section IV-B describes
          ("only the first call may need the buffer adjustment").
        """
        self.predictions += 1
        used_class = self.native.class_for(used)
        buf_class = buffer.size_class if buffer.size_class > 0 else buffer.capacity
        if not grown and used_class is not None and used_class >= buf_class:
            self.prediction_hits += 1
        self.predictor.observe(protocol, method, used)
        self.native.put(buffer, ledger)

    # -- stats ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.prediction_hits / self.predictions if self.predictions else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<HistoryShadowPool kinds={len(self.history)}"
            f" hit_rate={self.hit_rate:.2%}>"
        )
