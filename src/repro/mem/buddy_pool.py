"""Buddy-allocator registered buffer pool — the SNIPPETS.md Snippet 1
(cubefs ``rdmaMemBlock*``/``rdmaMemPoolLevel``) design for level 1.

Instead of fixed per-size-class free lists, the pool pre-registers a
handful of large power-of-two *slabs* and carves buffers out of them
with a classic buddy allocator: a request is rounded up to a
power-of-two block, the smallest free block that fits is split in
halves down to that size, and on release a block coalesces with its
buddy (the block at ``offset ^ size``) back up the levels.  Buffers
are memoryview windows into the slab storage — acquiring one moves no
bytes and registers no memory, which is what makes rendezvous
pre-posting for predicted-large messages (``repro.net.verbs``)
measurable: the advertised buffer already exists inside a registered
region.

Requests larger than a slab take a dedicated registration, fronted by
a small **registration cache** (keyed by power-of-two size, LRU): a
hit reuses a still-registered buffer for the pool-get cost, a miss
pays the full ``mr_register`` charge, and inserting into a full cache
evicts (deregisters) the oldest entry.  Hit/miss/evict counts are
exported for the crossover experiment's report.

Cost model: identical charges to :class:`NativeBufferPool` — slab
registration is charged up front to ``preregistration_us``, steady
state acquire/release costs ``pool_get_us``/``pool_return_us``
(splits and coalesces are pointer arithmetic; Section III-C: "the
overhead of getting a buffer is very small"), and only slab growth or
an oversized-cache miss pays ``mr_register`` at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.calibration import CostModel
from repro.mem.cost import CostLedger
from repro.mem.native_pool import NativeBuffer, PoolExhausted
from repro.simcore import sanitizer as _sanitizer


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class BuddyBuffer(NativeBuffer):
    """A registered buffer that is a window into a buddy-pool slab."""

    __slots__ = ("slab", "offset")

    def __init__(
        self, capacity: int, size_class: int, view, slab: int, offset: int
    ):
        # Deliberately does NOT call NativeBuffer.__init__: the storage
        # is the slab's, not a fresh bytearray.
        self.capacity = capacity
        self.data = view
        self.size_class = size_class
        self.registered = True
        self.in_pool = False
        self.slab = slab
        self.offset = offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BuddyBuffer slab={self.slab} off={self.offset}"
            f" cap={self.capacity}>"
        )


class BuddyBufferPool:
    """Power-of-two buddy allocator over pre-registered slabs.

    Drop-in for :class:`NativeBufferPool` (``get``/``put``/
    ``class_for``/``outstanding``/sanitizer ledger), selected via the
    ``rpc.ib.pool.impl=buddy`` configuration key.
    """

    def __init__(
        self,
        model: CostModel,
        slab_bytes: int = 1024 * 1024,
        slabs: int = 8,
        min_block: int = 128,
        regcache_capacity: int = 16,
        hard_cap: Optional[int] = None,
    ):
        if not _is_pow2(slab_bytes):
            raise ValueError(f"slab_bytes must be a power of two: {slab_bytes}")
        if not _is_pow2(min_block) or min_block > slab_bytes:
            raise ValueError(
                f"min_block must be a power of two <= slab_bytes: {min_block}"
            )
        if slabs < 1:
            raise ValueError(f"need at least one slab, got {slabs}")
        if regcache_capacity < 0:
            raise ValueError(f"negative regcache_capacity {regcache_capacity}")
        self.model = model
        self.slab_bytes = slab_bytes
        self.min_block = min_block
        self.regcache_capacity = regcache_capacity
        self.hard_cap = hard_cap
        self._slabs: List[bytearray] = []
        #: free map: block size -> insertion-ordered {(slab, offset): None}
        #: (dict-as-ordered-set: O(1) membership removal for coalescing
        #: plus deterministic LIFO allocation via popitem()).
        self._free: Dict[int, Dict[Tuple[int, int], None]] = {}
        size = min_block
        while size <= slab_bytes:
            self._free[size] = {}
            size *= 2
        #: oversized registration cache: pow2 size -> [NativeBuffer] (LRU
        #: order: index 0 is oldest); plus a flat insertion-order list
        #: of (size, buffer) for eviction.
        self._regcache: Dict[int, List[NativeBuffer]] = {}
        self._regcache_order: List[Tuple[int, NativeBuffer]] = []
        self.outstanding = 0
        self.outstanding_block_bytes = 0
        self.gets = 0
        self.returns = 0
        self.splits = 0
        self.coalesces = 0
        self.runtime_registrations = 0
        self.regcache_hits = 0
        self.regcache_misses = 0
        self.regcache_evicts = 0
        self.preregistration_us = 0.0
        self._sanitizer = _sanitizer.current()
        self._acquired_at: Dict[int, str] = {}
        if self._sanitizer is not None:
            self._sanitizer.note_pool(self)
        for _ in range(slabs):
            self._add_slab(ledger=None)

    # -- slab management ---------------------------------------------------
    def _add_slab(self, ledger: Optional[CostLedger]) -> None:
        """Register one more slab; charged up front or to ``ledger``."""
        mem = self.model.memory
        cost = (
            mem.mr_register_base_us
            + self.slab_bytes * mem.mr_register_per_byte_us
        )
        if ledger is None:
            self.preregistration_us += cost
        else:
            ledger.charge("register", cost)
            self.runtime_registrations += 1
        index = len(self._slabs)
        self._slabs.append(bytearray(self.slab_bytes))
        self._free[self.slab_bytes][(index, 0)] = None

    @property
    def slab_count(self) -> int:
        return len(self._slabs)

    # -- class lookup ------------------------------------------------------
    def class_for(self, nbytes: int) -> Optional[int]:
        """Power-of-two block size serving ``nbytes``; None if oversized."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        size = self.min_block
        while size < nbytes:
            size *= 2
        return size if size <= self.slab_bytes else None

    # -- acquire/release ---------------------------------------------------
    def get(self, nbytes: int, ledger: CostLedger) -> NativeBuffer:
        """Acquire a registered buffer of at least ``nbytes``."""
        self.gets += 1
        block = self.class_for(nbytes)
        if block is None:
            buf = self._get_oversized(nbytes, ledger)
        else:
            buf = self._get_block(block, ledger)
        self.outstanding += 1
        if self._sanitizer is not None:
            self._acquired_at[id(buf)] = _sanitizer.acquisition_site()
        return buf

    def _get_block(self, block: int, ledger: CostLedger) -> BuddyBuffer:
        if self.hard_cap is not None and self.outstanding >= self.hard_cap:
            raise PoolExhausted(
                f"pool hard cap {self.hard_cap} reached for block {block}"
            )
        # Smallest free block that fits, splitting downward.
        size = block
        while size <= self.slab_bytes and not self._free[size]:
            size *= 2
        if size > self.slab_bytes:
            # Every slab fully carved out: grow by one slab (the
            # NativeBufferPool "pool grew beyond preallocation" case —
            # the runtime registration is the whole cost of the get).
            self._add_slab(ledger)
            size = self.slab_bytes
        else:
            ledger.charge_pool_get()
        (slab, offset), _ = self._free[size].popitem()
        while size > block:
            size //= 2
            self.splits += 1
            self._free[size][(slab, offset + size)] = None
        view = memoryview(self._slabs[slab])[offset: offset + block]
        self.outstanding_block_bytes += block
        return BuddyBuffer(block, block, view, slab, offset)

    def _get_oversized(self, nbytes: int, ledger: CostLedger) -> NativeBuffer:
        """Dedicated registration, fronted by the registration cache."""
        mem = self.model.memory
        # Cache key: pow2 rounding keeps reuse possible across nearby
        # oversized requests without per-byte keys.
        size = self.slab_bytes
        while size < nbytes:
            size *= 2
        cached = self._regcache.get(size)
        if cached:
            buf = cached.pop(0)
            self._regcache_order.remove((size, buf))
            self.regcache_hits += 1
            ledger.charge_pool_get()
            buf.in_pool = False
            return buf
        self.regcache_misses += 1
        ledger.charge(
            "register",
            mem.mr_register_base_us + size * mem.mr_register_per_byte_us,
        )
        self.runtime_registrations += 1
        return NativeBuffer(size, -1)

    def put(self, buffer: NativeBuffer, ledger: CostLedger) -> None:
        """Return a buffer: coalesce into the free map or cache it."""
        if buffer.in_pool:
            raise RuntimeError("double return of a pooled buffer")
        self.returns += 1
        self.outstanding -= 1
        if self._sanitizer is not None:
            self._acquired_at.pop(id(buffer), None)
        ledger.charge_pool_return()
        if not isinstance(buffer, BuddyBuffer):
            self._cache_oversized(buffer)
            return
        buffer.in_pool = True
        slab, offset, size = buffer.slab, buffer.offset, buffer.size_class
        self.outstanding_block_bytes -= size
        while size < self.slab_bytes:
            buddy = (slab, offset ^ size)
            if buddy not in self._free[size]:
                break
            del self._free[size][buddy]
            offset &= ~size
            size *= 2
            self.coalesces += 1
        self._free[size][(slab, offset)] = None

    def _cache_oversized(self, buffer: NativeBuffer) -> None:
        """LRU-insert a dedicated registration; evict when over capacity."""
        if self.regcache_capacity == 0:
            return  # registration dropped (deregistered) immediately
        buffer.in_pool = True
        size = buffer.capacity
        self._regcache.setdefault(size, []).append(buffer)
        self._regcache_order.append((size, buffer))
        if len(self._regcache_order) > self.regcache_capacity:
            old_size, old_buf = self._regcache_order.pop(0)
            self._regcache[old_size].remove(old_buf)
            old_buf.in_pool = False
            old_buf.registered = False
            self.regcache_evicts += 1

    # -- introspection (property tests + experiment report) ----------------
    def free_bytes(self) -> int:
        """Total bytes sitting in the slab free map."""
        return sum(size * len(blocks) for size, blocks in self._free.items())

    def free_map(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Canonical (sorted) snapshot of the free map, for invariants."""
        return {
            size: tuple(sorted(blocks))
            for size, blocks in self._free.items()
            if blocks
        }

    def free_count(self, block: int) -> int:
        return len(self._free.get(block, ()))

    def regcache_stats(self) -> Dict[str, int]:
        return {
            "hits": self.regcache_hits,
            "misses": self.regcache_misses,
            "evicts": self.regcache_evicts,
            "cached": len(self._regcache_order),
        }

    def sanitizer_outstanding(self) -> List[str]:
        """Acquisition sites of buffers never returned (sanitizer only)."""
        return sorted(self._acquired_at.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BuddyBufferPool slabs={len(self._slabs)}"
            f" outstanding={self.outstanding}>"
        )
