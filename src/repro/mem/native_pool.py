"""Native (off-JVM-heap) registered buffer pool — Section III-C, level 1.

Buffers are pre-allocated in size classes and pre-registered for RDMA
when the pool ("the RPCoIB library") loads, so steady-state acquisition
costs only a free-list pop.  The design follows the paper's reference
to TCMalloc/UCR-style size-class pools.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.calibration import CostModel
from repro.mem.cost import CostLedger
from repro.simcore import sanitizer as _sanitizer


class PoolExhausted(RuntimeError):
    """Raised when a hard-capped pool cannot serve a request."""


class NativeBuffer:
    """A registered native buffer: real bytes + pool bookkeeping.

    ``data`` is real storage — serialization writes actual bytes into
    it, so receivers deserialize genuine payloads.
    """

    __slots__ = ("capacity", "data", "size_class", "registered", "in_pool")

    def __init__(self, capacity: int, size_class: int, registered: bool = True):
        self.capacity = capacity
        self.data = bytearray(capacity)
        self.size_class = size_class
        self.registered = registered
        self.in_pool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NativeBuffer cap={self.capacity} class={self.size_class}>"


class NativeBufferPool:
    """Size-class pool of pre-registered native buffers.

    ``size_classes`` must be strictly increasing.  Requests larger than
    the largest class get a dedicated (registered-on-demand) buffer —
    they are rare by construction (message-size locality keeps RPC
    payloads inside the classes).
    """

    def __init__(
        self,
        model: CostModel,
        size_classes: List[int],
        buffers_per_class: int = 64,
        hard_cap: Optional[int] = None,
    ):
        if not size_classes or any(
            b <= a for a, b in zip(size_classes, size_classes[1:])
        ):
            raise ValueError("size_classes must be non-empty, strictly increasing")
        if buffers_per_class < 1:
            raise ValueError("buffers_per_class must be >= 1")
        self.model = model
        self.size_classes = list(size_classes)
        self.buffers_per_class = buffers_per_class
        self.hard_cap = hard_cap
        self._free: Dict[int, List[NativeBuffer]] = {c: [] for c in size_classes}
        # Buffers are pre-registered at load time (their cost is charged
        # up front in ``preregistration_us``) but their storage is
        # materialized lazily on first use — identical cost model,
        # without holding every size class's memory in the host Python
        # process.
        self._prereg_remaining: Dict[int, int] = {
            c: buffers_per_class for c in size_classes
        }
        self.outstanding = 0
        self.runtime_registrations = 0
        self.gets = 0
        self.returns = 0
        self.preregistration_us = 0.0
        # Sanitizer ledger: id(buffer) -> acquisition site, populated
        # only when a SimSanitizer is installed at construction time.
        self._sanitizer = _sanitizer.current()
        self._acquired_at: Dict[int, str] = {}
        if self._sanitizer is not None:
            self._sanitizer.note_pool(self)
        mem = model.memory
        for cls_size in self.size_classes:
            self.preregistration_us += buffers_per_class * (
                mem.mr_register_base_us + cls_size * mem.mr_register_per_byte_us
            )

    # -- class lookup ------------------------------------------------------
    def class_for(self, nbytes: int) -> Optional[int]:
        """Smallest size class holding ``nbytes``; None if oversized."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        idx = bisect.bisect_left(self.size_classes, nbytes)
        return self.size_classes[idx] if idx < len(self.size_classes) else None

    # -- acquire/release -----------------------------------------------------
    def get(self, nbytes: int, ledger: CostLedger) -> NativeBuffer:
        """Acquire a registered buffer of at least ``nbytes``."""
        self.gets += 1
        cls_size = self.class_for(nbytes)
        mem = self.model.memory
        if cls_size is None:
            # Oversized: dedicated buffer, registered on the spot.
            ledger.charge(
                "register",
                mem.mr_register_base_us + nbytes * mem.mr_register_per_byte_us,
            )
            self.runtime_registrations += 1
            self.outstanding += 1
            buf = NativeBuffer(nbytes, -1)
            if self._sanitizer is not None:
                self._acquired_at[id(buf)] = _sanitizer.acquisition_site()
            return buf
        free = self._free[cls_size]
        if free:
            buf = free.pop()
            buf.in_pool = False
            ledger.charge_pool_get()
        elif self._prereg_remaining[cls_size] > 0:
            # Materialize one of the pre-registered buffers: cheap get.
            self._prereg_remaining[cls_size] -= 1
            ledger.charge_pool_get()
            buf = NativeBuffer(cls_size, cls_size)
        else:
            if self.hard_cap is not None and self.outstanding >= self.hard_cap:
                raise PoolExhausted(
                    f"pool hard cap {self.hard_cap} reached for class {cls_size}"
                )
            # Pool grew beyond its preallocation: pay registration now.
            ledger.charge(
                "register",
                mem.mr_register_base_us + cls_size * mem.mr_register_per_byte_us,
            )
            self.runtime_registrations += 1
            buf = NativeBuffer(cls_size, cls_size)
        self.outstanding += 1
        if self._sanitizer is not None:
            self._acquired_at[id(buf)] = _sanitizer.acquisition_site()
        return buf

    def put(self, buffer: NativeBuffer, ledger: CostLedger) -> None:
        """Return a buffer to its class free list."""
        if buffer.in_pool:
            raise RuntimeError("double return of a pooled buffer")
        self.returns += 1
        self.outstanding -= 1
        if self._sanitizer is not None:
            self._acquired_at.pop(id(buffer), None)
        ledger.charge_pool_return()
        if buffer.size_class in self._free:
            buffer.in_pool = True
            self._free[buffer.size_class].append(buffer)
        # Oversized dedicated buffers (size_class == -1) are dropped.

    def free_count(self, cls_size: int) -> int:
        return len(self._free.get(cls_size, ()))

    def sanitizer_outstanding(self) -> List[str]:
        """Acquisition sites of buffers never returned (sanitizer only)."""
        return sorted(self._acquired_at.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NativeBufferPool classes={len(self.size_classes)}"
            f" outstanding={self.outstanding}>"
        )


def build_pool(model: CostModel, conf):
    """Construct the level-1 pool the configuration asks for.

    ``rpc.ib.pool.impl`` selects the implementation: ``sizeclass``
    (default — this module's pre-registered size-class pool, the
    paper's Section III-C design) or ``buddy`` (the cubefs-style
    buddy allocator in :mod:`repro.mem.buddy_pool`, required for the
    adaptive-transport pre-posting to be measurable).  ``conf`` is
    duck-typed (anything with the ``Configuration`` getters).
    """
    impl = str(conf.get("rpc.ib.pool.impl", "sizeclass"))
    if impl == "buddy":
        from repro.mem.buddy_pool import BuddyBufferPool

        return BuddyBufferPool(
            model,
            slab_bytes=conf.get_int("rpc.ib.pool.slab.bytes"),
            slabs=conf.get_int("rpc.ib.pool.slabs"),
            min_block=conf.get_int("rpc.ib.pool.min.block"),
            regcache_capacity=conf.get_int("rpc.ib.pool.regcache.capacity"),
        )
    if impl != "sizeclass":
        raise ValueError(
            f"unknown rpc.ib.pool.impl {impl!r} (sizeclass or buddy)"
        )
    return NativeBufferPool(
        model,
        conf.get_ints("rpc.ib.pool.size.classes"),
        buffers_per_class=conf.get_int("rpc.ib.pool.buffers.per.class"),
    )
