"""Cost ledger: accumulates the simulated time of mechanical operations.

Serialization/buffer code in :mod:`repro.io` is *pure* — it runs
eagerly on real bytes and records what it did (allocations, copies,
primitive writes) in a :class:`CostLedger`.  The owning simulation
process then charges the accumulated time to the clock in one
``yield env.timeout(ledger.drain())``.  This separation keeps the
mechanical layer unit-testable without a simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.calibration import CostModel


@dataclass(slots=True)
class OpCounts:
    """Counters of mechanical operations, independent of their cost."""

    allocations: int = 0
    alloc_bytes: int = 0
    copies: int = 0
    copy_bytes: int = 0
    #: buffer-growth events of Algorithm 1 ("Avg. Mem Adjustment Times"
    #: column of Table I counts these plus the initial allocation).
    adjustments: int = 0
    write_ops: int = 0
    read_ops: int = 0

    def merge(self, other: "OpCounts") -> None:
        self.allocations += other.allocations
        self.alloc_bytes += other.alloc_bytes
        self.copies += other.copies
        self.copy_bytes += other.copy_bytes
        self.adjustments += other.adjustments
        self.write_ops += other.write_ops
        self.read_ops += other.read_ops


class CostLedger:
    """Time and operation accounting for one activity (e.g. one RPC call).

    ``total_us`` is on-thread time (charged to the simulated clock by
    the owner); ``gc_debt_us`` is deferred collector work triggered by
    heap allocation, to be drained into the owning node's GC account.
    """

    __slots__ = (
        "model", "total_us", "gc_debt_us", "counts", "by_category",
        "_alloc_base_us", "_zero_per_byte_us",
        "_gc_per_alloc_us", "_gc_per_byte_us",
        "_copy_base_us", "_copy_per_byte_us",
        "_write_op_us", "_ser_per_byte_us",
        "_read_op_us", "_deser_per_byte_us",
    )

    def __init__(self, model: CostModel):
        self.model = model
        self.total_us = 0.0
        self.gc_debt_us = 0.0
        self.counts = OpCounts()
        self.by_category: Dict[str, float] = defaultdict(float)
        # Model coefficients prebound as instance attributes: the
        # charge_* fast paths below run several times per RPC call and
        # the model objects are frozen, so the chained
        # ``self.model.memory.<coef>`` lookups are pure overhead.
        mem = model.memory
        self._alloc_base_us = mem.heap_alloc_base_us
        self._zero_per_byte_us = mem.heap_zero_per_byte_us
        self._gc_per_alloc_us = mem.gc_per_alloc_us
        self._gc_per_byte_us = mem.gc_per_byte_us
        self._copy_base_us = mem.memcpy_base_us
        self._copy_per_byte_us = mem.memcpy_per_byte_us
        sw = model.software
        self._write_op_us = sw.writable_write_op_us
        self._ser_per_byte_us = sw.serialize_per_byte_us
        self._read_op_us = sw.writable_read_op_us
        self._deser_per_byte_us = sw.deserialize_per_byte_us

    # -- generic -----------------------------------------------------------
    def charge(self, category: str, us: float) -> None:
        """Charge an arbitrary cost under ``category``."""
        if us < 0:
            raise ValueError(f"negative charge {us} for {category}")
        self.total_us += us
        self.by_category[category] += us

    # -- memory operations ---------------------------------------------------
    # The specialized charge_* methods below bypass :meth:`charge` (these
    # run once per primitive on the serialization hot path).  They MUST
    # apply the same float operations in the same order — ``us`` computed
    # by the identical model expression, then ``total_us += us``, then
    # ``by_category[...] += us`` — so totals stay bit-identical with the
    # pre-flattening implementation.  The model never produces negative
    # costs, so :meth:`charge`'s validation is vacuous here.

    def charge_heap_alloc(self, nbytes: int) -> None:
        """``new byte[nbytes]`` on the JVM heap: allocate + zero + GC debt."""
        us = self._alloc_base_us + nbytes * self._zero_per_byte_us
        self.total_us += us
        self.by_category["alloc"] += us
        self.gc_debt_us += self._gc_per_alloc_us + nbytes * self._gc_per_byte_us
        counts = self.counts
        counts.allocations += 1
        counts.alloc_bytes += nbytes

    def charge_copy(self, nbytes: int) -> None:
        """One memcpy of ``nbytes`` (heap<->heap or heap<->native)."""
        us = self._copy_base_us + nbytes * self._copy_per_byte_us
        self.total_us += us
        self.by_category["copy"] += us
        counts = self.counts
        counts.copies += 1
        counts.copy_bytes += nbytes

    def charge_adjustment(self) -> None:
        """Record one Algorithm-1 buffer-growth event (costs are charged
        separately via :meth:`charge_heap_alloc`/:meth:`charge_copy`)."""
        self.counts.adjustments += 1

    # -- serialization primitives -----------------------------------------------
    def charge_write_op(self, nbytes: int) -> None:
        """One Writable primitive write of ``nbytes`` payload."""
        us = self._write_op_us + nbytes * self._ser_per_byte_us
        self.total_us += us
        self.by_category["serialize"] += us
        self.counts.write_ops += 1

    def charge_read_op(self, nbytes: int) -> None:
        """One Writable primitive read of ``nbytes`` payload."""
        us = self._read_op_us + nbytes * self._deser_per_byte_us
        self.total_us += us
        self.by_category["deserialize"] += us
        self.counts.read_ops += 1

    # -- pool operations --------------------------------------------------------
    def charge_pool_get(self) -> None:
        self.charge("pool", self.model.memory.pool_get_us)

    def charge_pool_return(self) -> None:
        self.charge("pool", self.model.memory.pool_return_us)

    def charge_direct_wrap(self) -> None:
        self.charge("pool", self.model.memory.direct_wrap_us)

    # -- lifecycle ----------------------------------------------------------------
    def drain(self) -> float:
        """Return accumulated on-thread time and reset it (keeps counts)."""
        us, self.total_us = self.total_us, 0.0
        return us

    def drain_gc(self) -> float:
        """Return accumulated GC debt and reset it."""
        us, self.gc_debt_us = self.gc_debt_us, 0.0
        return us

    def category(self, name: str) -> float:
        """Cumulative cost charged under ``name`` (never reset)."""
        return self.by_category.get(name, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CostLedger total={self.total_us:.2f}us gc={self.gc_debt_us:.2f}us"
            f" allocs={self.counts.allocations} copies={self.counts.copies}>"
        )
