"""Per-node JVM heap accounting.

Tracks cumulative allocation/copy volume and the deferred GC debt of
all activities on a node.  Job-scale simulations periodically drain the
debt as pause time charged to the node's CPU — this is the mechanism by
which the socket path's buffer churn costs more than its on-thread
microseconds (Section II of the paper measures exactly this churn).
"""

from __future__ import annotations

from repro.calibration import CostModel
from repro.mem.cost import CostLedger


class JvmHeap:
    """Aggregated heap behaviour of one JVM (daemon or task child)."""

    def __init__(self, model: CostModel, name: str = "jvm"):
        self.model = model
        self.name = name
        self.total_allocations = 0
        self.total_alloc_bytes = 0
        self.total_copies = 0
        self.total_copy_bytes = 0
        self._gc_debt_us = 0.0
        self.gc_pauses = 0
        self.gc_pause_us_total = 0.0

    def absorb(self, ledger: CostLedger) -> None:
        """Fold one activity's ledger into this heap's aggregates.

        Takes the GC debt out of the ledger; the on-thread time is left
        for the activity itself to charge.
        """
        self._gc_debt_us += ledger.drain_gc()
        self.total_allocations += ledger.counts.allocations
        self.total_alloc_bytes += ledger.counts.alloc_bytes
        self.total_copies += ledger.counts.copies
        self.total_copy_bytes += ledger.counts.copy_bytes

    @property
    def gc_debt_us(self) -> float:
        return self._gc_debt_us

    def take_gc_pause(self) -> float:
        """Drain the accumulated debt as one stop-the-world pause."""
        pause, self._gc_debt_us = self._gc_debt_us, 0.0
        if pause > 0:
            self.gc_pauses += 1
            self.gc_pause_us_total += pause
        return pause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JvmHeap {self.name} allocs={self.total_allocations}"
            f" bytes={self.total_alloc_bytes} gc_debt={self._gc_debt_us:.1f}us>"
        )
