"""Calibrated cost model for the RPCoIB reproduction.

Every physical constant the simulation charges to the clock lives here,
with its provenance.  Three classes of provenance:

* ``[paper]``   — stated in the ICPP'13 paper (target numbers).
* ``[era]``     — typical 2012-era hardware figure (QDR ConnectX,
  Westmere Xeons, 7.2K SATA disks, NetEffect NE020 10GigE).
* ``[calibrated]`` — free parameter tuned so the simulated headline
  numbers land inside the paper's bands (see
  ``tests/experiments/test_calibration.py``).  These encode software
  overheads (JVM, kernel, driver) that the paper measured only in
  aggregate.

Units: microseconds and bytes (bandwidth = bytes/us; see
:mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.units import GB, KB, MB, gbps, mb_per_s


@dataclass(frozen=True)
class NetworkSpec:
    """Wire + NIC characteristics of one fabric/protocol combination."""

    name: str
    #: one-way propagation + switch latency for a minimum-size message.
    latency_us: float
    #: effective point-to-point bandwidth, bytes/us.
    bandwidth: float
    #: host-side driver/interrupt/NIC cost charged per message per side
    #: (on top of syscall or verbs-post costs from SoftwareModel).
    host_overhead_us: float
    #: whether the host CPU is involved per byte (sockets) or the NIC
    #: DMAs independently (verbs/RDMA).
    cpu_per_byte_us: float = 0.0
    #: True for verbs/RDMA transports (registered-memory semantics).
    rdma_capable: bool = False

    def transfer_us(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` (no host costs)."""
        return self.latency_us + nbytes / self.bandwidth


#: The four network configurations of the paper's evaluation, plus the
#: split of native IB into its eager (send/recv) and RDMA paths
#: (Section III-D threshold switches between the two).
ONE_GIGE = NetworkSpec(
    name="1GigE",
    latency_us=22.0,  # [era] GigE switch + NIC
    bandwidth=gbps(0.94),  # [era] TCP goodput on 1GigE
    host_overhead_us=2.0,  # [calibrated] NIC interrupt path
    cpu_per_byte_us=0.00030,  # [era] kernel TCP per-byte on GigE
)
TEN_GIGE = NetworkSpec(
    name="10GigE",
    latency_us=6.5,  # [era] NetEffect NE020 used via sockets
    bandwidth=gbps(10.3),  # [era] TCP goodput on 10GigE
    host_overhead_us=1.75,  # [calibrated] per-packet host cost is the
    # reason 10GigE throughput trails IPoIB in Fig. 5(b)
    cpu_per_byte_us=0.00024,
)
IPOIB_QDR = NetworkSpec(
    name="IPoIB (32Gbps)",
    latency_us=10.0,  # [era] IPoIB-CM adds IP stack over QDR
    bandwidth=gbps(12.0),  # [era] IPoIB-CM goodput on QDR
    host_overhead_us=0.9,  # [calibrated]
    cpu_per_byte_us=0.00020,
)
IB_EAGER = NetworkSpec(
    name="IB send/recv (32Gbps)",
    latency_us=2.2,  # [era] QDR verbs small-message half-RTT
    bandwidth=gbps(25.0),  # [era] verbs large-message goodput
    host_overhead_us=0.8,  # [calibrated] doorbell + completion
    rdma_capable=True,
)
IB_RDMA = NetworkSpec(
    name="IB RDMA (32Gbps)",
    latency_us=1.5,  # [era] RDMA-write half-RTT
    bandwidth=gbps(26.0),
    host_overhead_us=0.7,
    rdma_capable=True,
)

FABRICS: Dict[str, NetworkSpec] = {
    "1gige": ONE_GIGE,
    "10gige": TEN_GIGE,
    "ipoib": IPOIB_QDR,
    "ib_eager": IB_EAGER,
    "ib_rdma": IB_RDMA,
}


@dataclass(frozen=True)
class MemoryModel:
    """JVM-heap and native-memory mechanical costs."""

    #: fixed cost of one ``new byte[]``/ByteBuffer.allocate [calibrated]
    heap_alloc_base_us: float = 0.30
    #: Java zeroes fresh arrays: ~4 GB/s on Westmere [era]
    heap_zero_per_byte_us: float = 0.00025
    #: memcpy bandwidth ~6 GB/s [era]
    memcpy_per_byte_us: float = 0.000167
    #: fixed cost per memcpy call
    memcpy_base_us: float = 0.05
    #: wrapping a native buffer as DirectByteBuffer [calibrated]
    direct_wrap_us: float = 0.20
    #: get/return from the pre-registered native pool (Section III-C:
    #: "the overhead of getting a buffer is very small") [calibrated]
    pool_get_us: float = 0.30
    pool_return_us: float = 0.15
    #: one-time RDMA memory registration, amortized at pool creation
    mr_register_per_byte_us: float = 0.0005
    mr_register_base_us: float = 30.0
    #: deferred GC cost per heap allocation event and per heap byte —
    #: charged in aggregate to the owning node's CPU [calibrated]
    gc_per_alloc_us: float = 0.08
    gc_per_byte_us: float = 0.00006

    def alloc_us(self, nbytes: int) -> float:
        """Cost of allocating a fresh JVM heap buffer of ``nbytes``."""
        return self.heap_alloc_base_us + nbytes * self.heap_zero_per_byte_us

    def copy_us(self, nbytes: int) -> float:
        """Cost of one memcpy of ``nbytes``."""
        return self.memcpy_base_us + nbytes * self.memcpy_per_byte_us

    def gc_debt_us(self, nbytes: int) -> float:
        """Deferred collector cost from allocating ``nbytes``."""
        return self.gc_per_alloc_us + nbytes * self.gc_per_byte_us


@dataclass(frozen=True)
class SoftwareModel:
    """JVM / kernel / RPC-stack per-operation costs."""

    #: send()/recv() syscall incl. JVM socket wrapper [calibrated]
    socket_syscall_us: float = 3.2
    #: JNI crossing into the RDMA library [era]
    jni_crossing_us: float = 1.0
    #: posting a verbs work request [era]
    verbs_post_us: float = 1.6
    #: rendezvous handshake for RDMA transfers (buffer advertisement
    #: round) — the reason small messages go eager [era]
    rdma_rendezvous_us: float = 5.0
    #: residual rendezvous cost when the target buffer advertisement
    #: was *pre-posted* (predictor-driven adaptive transport overlaps
    #: the handshake with serialization; only the doorbell/notify
    #: remains on the critical path) [calibrated]
    rdma_prepost_us: float = 1.2
    #: completion-queue poll/wakeup [calibrated]
    cq_poll_us: float = 2.2
    #: server-side Reader per-event scan across connection endpoints
    #: (the paper's Reader "polls incoming events for each connection")
    #: [calibrated]
    server_ib_poll_scan_us: float = 1.7
    #: waking/handing off to another JVM thread (caller->Connection,
    #: Reader->Handler, Handler->Responder) [calibrated]
    thread_handoff_us: float = 3.0
    #: per-call server dispatch bookkeeping [calibrated]
    handler_dispatch_us: float = 0.7
    #: reflective method invocation of the RPC target [era]
    reflection_invoke_us: float = 1.2
    #: one Writable primitive write/read (stream call chain) [calibrated]
    writable_write_op_us: float = 0.35
    writable_read_op_us: float = 0.30
    #: per-byte encode/decode cost beyond memcpy [calibrated]
    serialize_per_byte_us: float = 0.00085
    deserialize_per_byte_us: float = 0.0007
    #: NameNode edit-log append+sync per mutating namespace op
    #: (journal disk with write cache; group commit) [era]
    editlog_sync_us: float = 350.0
    #: TCP connect + Hadoop connection header exchange [era]
    socket_connect_us: float = 250.0
    #: IB endpoint information exchange over the socket channel +
    #: QP transition (Section III-D bootstrap) [era]
    endpoint_exchange_us: float = 900.0


@dataclass(frozen=True)
class DiskSpec:
    """2012-era 7.2K SATA HDD, one per node (paper's clusters)."""

    name: str = "hdd-7200rpm"
    #: sequential bandwidth through the page cache; writes see the
    #: cache, hence higher than raw platter speed [era]
    seq_write: float = mb_per_s(170.0)
    seq_read: float = mb_per_s(140.0)
    seek_us: float = 8_000.0

    def write_us(self, nbytes: int) -> float:
        return self.seek_us + nbytes / self.seq_write

    def read_us(self, nbytes: int) -> float:
        return self.seek_us + nbytes / self.seq_read


@dataclass(frozen=True)
class ComputeSpec:
    """Per-byte application CPU costs for the workload models [calibrated].

    These set the *scale* of job times (Fig. 6's 100-600 s range); the
    RPC-design deltas come from the mechanism, not from these.
    """

    #: map-side record processing (parse + partition + serialize)
    map_cpu_per_byte_us: float = 0.012
    #: in-memory sort per byte per merge pass
    sort_cpu_per_byte_us: float = 0.010
    #: reduce-side merge + reduce function
    reduce_cpu_per_byte_us: float = 0.010
    #: CloudBurst alignment kernel is CPU-heavy
    cloudburst_align_per_byte_us: float = 0.16
    cloudburst_filter_per_byte_us: float = 0.03
    #: HBase server-side op handling beyond RPC (memstore/cache)
    hbase_get_cpu_us: float = 45.0
    hbase_put_cpu_us: float = 28.0
    #: task JVM startup (Hadoop 0.20.2 spawns child JVMs) [era]
    task_startup_us: float = 1_200_000.0
    #: cores per node (Cluster A/B: dual quad-core Westmere) [paper]
    cores_per_node: int = 8


@dataclass(frozen=True)
class CostModel:
    """Aggregate of all cost submodels; passed through the whole stack."""

    memory: MemoryModel = field(default_factory=MemoryModel)
    software: SoftwareModel = field(default_factory=SoftwareModel)
    disk: DiskSpec = field(default_factory=DiskSpec)
    compute: ComputeSpec = field(default_factory=ComputeSpec)

    @staticmethod
    def default() -> "CostModel":
        return CostModel()

    def with_memory(self, **kwargs) -> "CostModel":
        return replace(self, memory=replace(self.memory, **kwargs))

    def with_software(self, **kwargs) -> "CostModel":
        return replace(self, software=replace(self.software, **kwargs))


#: Paper headline targets, used by the calibration acceptance tests and
#: recorded in EXPERIMENTS.md.  Values straight from the paper text.
PAPER_TARGETS = {
    "fig5a.rpcoib.latency_1b_us": 39.0,
    "fig5a.rpcoib.latency_4kb_us": 52.0,
    "fig5a.reduction_vs_10gige": (0.42, 0.49),
    "fig5a.reduction_vs_ipoib": (0.46, 0.50),
    "fig5b.rpcoib.peak_kops": 135.22,
    "fig5b.gain_vs_10gige": 0.82,
    "fig5b.gain_vs_ipoib": 0.64,
    "fig6a.sort_128gb_gain": 0.152,
    "fig6a.randomwriter_128gb_gain": 0.12,
    "fig6a.sort_64gb_gain": 0.123,
    "fig6a.randomwriter_64gb_gain": 0.091,
    "fig6b.cloudburst_total_gain": 0.10,
    "fig6b.cloudburst_alignment_gain": 0.107,
    "fig7.hdfs_write_gain": 0.10,
    "fig8.hbase_put_gain": 0.16,
    "fig8.hbase_get_gain": 0.06,
    "fig8.hbase_mix_gain": 0.24,
    "fig1.ipoib_alloc_ratio_2mb": 0.30,
}
