"""Java-IO and Hadoop Writable serialization layer (emulated, byte-exact).

This package re-implements the serialization machinery the paper
analyzes in Section II — ``DataOutputBuffer`` with its Algorithm 1
growth policy, buffered socket streams, the ``Writable`` type system —
and the Section III replacements, ``RDMAOutputStream`` /
``RDMAInputStream``, which serialize straight into pooled,
pre-registered native buffers.

The streams run eagerly on real bytes; their mechanical costs
(allocations, copies, primitive ops) accumulate in a
:class:`~repro.mem.cost.CostLedger` owned by the calling activity.
"""

from repro.io.data_output import DataOutput, DataOutputBuffer, DataOutputStream
from repro.io.data_input import DataInput, DataInputBuffer, EndOfStream
from repro.io.buffered import BufferedOutputStream, BytesSink, VectorSink
from repro.io.writable import (
    ObjectWritable,
    Writable,
    WritableRegistry,
    writable_factory,
)
from repro.io.writables import (
    ArrayWritable,
    BooleanWritable,
    BytesWritable,
    DoubleWritable,
    FloatWritable,
    IntWritable,
    LongWritable,
    MapWritable,
    NullWritable,
    Text,
    VIntWritable,
    VLongWritable,
)
from repro.io.rdma_streams import RDMAInputStream, RDMAOutputStream

__all__ = [
    "ArrayWritable",
    "BooleanWritable",
    "BufferedOutputStream",
    "BytesSink",
    "BytesWritable",
    "DataInput",
    "DataInputBuffer",
    "DataOutput",
    "DataOutputBuffer",
    "DataOutputStream",
    "DoubleWritable",
    "EndOfStream",
    "FloatWritable",
    "IntWritable",
    "LongWritable",
    "MapWritable",
    "NullWritable",
    "ObjectWritable",
    "RDMAInputStream",
    "RDMAOutputStream",
    "Text",
    "VIntWritable",
    "VLongWritable",
    "VectorSink",
    "Writable",
    "WritableRegistry",
    "writable_factory",
]
