"""Buffered stream plumbing for the socket send path.

Listing 1 line 10: ``new DataOutputStream(new BufferedOutputStream(
socketStream))`` — the extra copy through the BufferedOutputStream's
internal heap buffer is one of the Section II bottlenecks.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.mem.cost import CostLedger


class BytesSink:
    """Terminal sink that collects written chunks (tests, local pipes)."""

    def __init__(self) -> None:
        self.chunks: List[bytes] = []
        self.flushes = 0

    def write_bytes(self, data: bytes) -> None:
        self.chunks.append(bytes(data))

    def flush(self) -> None:
        self.flushes += 1

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class BufferedOutputStream:
    """Heap-buffered writer in front of a raw sink.

    Writes smaller than the remaining buffer space are copied into the
    internal heap buffer (charged); larger writes flush and pass
    through.  The internal buffer allocation is charged at
    construction, as the JVM does.
    """

    def __init__(self, sink, ledger: CostLedger, buffer_size: int = 8192):
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.sink = sink
        self.ledger = ledger
        self.buffer_size = buffer_size
        self._buffer = bytearray()
        ledger.charge_heap_alloc(buffer_size)

    def write_bytes(self, data: bytes) -> None:
        if len(data) >= self.buffer_size:
            # Too big to buffer: flush what we have, write through.
            self._flush_buffer()
            self.sink.write_bytes(data)
            return
        if len(self._buffer) + len(data) > self.buffer_size:
            self._flush_buffer()
        self._buffer.extend(data)
        self.ledger.charge_copy(len(data))

    def _flush_buffer(self) -> None:
        if self._buffer:
            self.sink.write_bytes(bytes(self._buffer))
            self._buffer.clear()

    def flush(self) -> None:
        self._flush_buffer()
        self.sink.flush()

    @property
    def buffered(self) -> int:
        return len(self._buffer)
