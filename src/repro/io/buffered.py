"""Buffered stream plumbing for the socket send path.

Listing 1 line 10: ``new DataOutputStream(new BufferedOutputStream(
socketStream))`` — the extra copy through the BufferedOutputStream's
internal heap buffer is one of the Section II bottlenecks.

Host-side the buffering is *vectored*: chunks accumulate in a list and
reach the sink either through its optional ``write_vec(chunks)`` method
(gather write — no host copy at all) or joined exactly once into a
single ``write_bytes`` call.  The ledger is unaffected: buffering
charges model the JVM copy per buffered write, exactly as before.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mem.cost import CostLedger


class BytesSink:
    """Terminal sink that collects written chunks (tests, local pipes)."""

    def __init__(self) -> None:
        self.chunks: List[bytes] = []
        self.flushes = 0

    def write_bytes(self, data) -> None:
        # Snapshot: callers may recycle the buffer behind a memoryview.
        self.chunks.append(bytes(data))  # sim-lint: disable=SIM008

    def flush(self) -> None:
        self.flushes += 1

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class VectorSink:
    """Terminal sink that collects chunk *references* without copying.

    The RPC framing paths terminate in one of these: the chunk list
    travels as-is to the transport, which materializes the wire image
    exactly once.  Callers must not mutate a chunk's backing buffer
    until the transport has consumed it.
    """

    __slots__ = ("chunks", "flushes")

    def __init__(self) -> None:
        self.chunks: list = []
        self.flushes = 0

    def write_bytes(self, data) -> None:
        self.chunks.append(data)

    def write_vec(self, chunks: list) -> None:
        self.chunks.extend(chunks)

    def flush(self) -> None:
        self.flushes += 1

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class BufferedOutputStream:
    """Heap-buffered writer in front of a raw sink.

    Writes smaller than the remaining buffer space are copied into the
    internal heap buffer (charged); larger writes flush and pass
    through.  The internal buffer allocation is charged at
    construction, as the JVM does.

    Host-side, "copied into the internal buffer" is modeled without a
    real copy: chunks are appended to a list and handed onward at flush
    time — vectored (``write_vec``) when the sink supports it, joined
    once otherwise.
    """

    def __init__(self, sink, ledger: CostLedger, buffer_size: int = 8192):
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.sink = sink
        self.ledger = ledger
        self.buffer_size = buffer_size
        self._buffer: list = []
        self._buffered = 0
        self._sink_write_vec = getattr(sink, "write_vec", None)
        ledger.charge_heap_alloc(buffer_size)

    def write_bytes(self, data) -> None:
        length = len(data)
        if length >= self.buffer_size:
            # Too big to buffer: flush what we have, write through.
            self._flush_buffer()
            self.sink.write_bytes(data)
            return
        if self._buffered + length > self.buffer_size:
            self._flush_buffer()
        self._buffer.append(data)
        self._buffered += length
        self.ledger.charge_copy(length)

    def _flush_buffer(self) -> None:
        buffer = self._buffer
        if buffer:
            if self._sink_write_vec is not None:
                self._sink_write_vec(buffer)
                self._buffer = []
            else:
                self.sink.write_bytes(b"".join(buffer))
                buffer.clear()
            self._buffered = 0

    def flush(self) -> None:
        self._flush_buffer()
        self.sink.flush()

    @property
    def buffered(self) -> int:
        """Bytes currently held in the internal buffer."""
        return self._buffered
