"""DataInput: Java-compatible primitive decoding over byte buffers."""

from __future__ import annotations

import struct
from typing import Union

from repro.mem.cost import CostLedger

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_SHORT = struct.Struct(">h")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")


class EndOfStream(EOFError):
    """Raised when a read runs past the available data."""


class DataInput:
    """Java ``DataInput`` primitives over an abstract raw ``read``.

    Subclasses implement :meth:`read` returning exactly ``n`` bytes.
    Primitives charge one Writable read op each; bulk reads charge a
    copy (Java ``readFully`` copies into a caller array).
    """

    ledger: CostLedger

    def read(self, n: int) -> bytes:
        raise NotImplementedError

    # -- primitives --------------------------------------------------------
    def read_byte(self) -> int:
        self.ledger.charge_read_op(1)
        value = self.read(1)[0]
        return value - 256 if value > 127 else value

    def read_unsigned_byte(self) -> int:
        self.ledger.charge_read_op(1)
        return self.read(1)[0]

    def read_boolean(self) -> bool:
        self.ledger.charge_read_op(1)
        return self.read(1)[0] != 0

    def read_short(self) -> int:
        self.ledger.charge_read_op(2)
        return _SHORT.unpack(self.read(2))[0]

    def read_int(self) -> int:
        self.ledger.charge_read_op(4)
        return _INT.unpack(self.read(4))[0]

    def read_long(self) -> int:
        self.ledger.charge_read_op(8)
        return _LONG.unpack(self.read(8))[0]

    def read_float(self) -> float:
        self.ledger.charge_read_op(4)
        return _FLOAT.unpack(self.read(4))[0]

    def read_double(self) -> float:
        self.ledger.charge_read_op(8)
        return _DOUBLE.unpack(self.read(8))[0]

    def read_fully(self, n: int) -> bytes:
        """Bulk read of ``n`` bytes into a caller array (one raw copy —
        no per-byte decode cost, unlike field-structured reads)."""
        self.ledger.charge_read_op(0)
        self.ledger.charge_copy(n)
        return self.read(n)

    def read_utf(self) -> str:
        length = self.read_short()
        if length < 0:
            raise EndOfStream(f"negative UTF length {length}")
        self.ledger.charge_read_op(length)
        return self.read(length).decode("utf-8")

    # -- Hadoop WritableUtils variable-length decodings ------------------------
    def read_vlong(self) -> int:
        self.ledger.charge_read_op(1)
        first = self.read(1)[0]
        first = first - 256 if first > 127 else first
        if first >= -112:
            return first
        negative = first < -120
        # Hadoop's decodeVIntSize counts the header byte; payload is one less.
        size = ((-119 - first) if negative else (-111 - first)) - 1
        value = 0
        for byte in self.read(size):
            value = (value << 8) | byte
        return ~value if negative else value

    def read_vint(self) -> int:
        value = self.read_vlong()
        if not -(2**31) <= value < 2**31:
            raise ValueError(f"vint out of int range: {value}")
        return value


class DataInputBuffer(DataInput):
    """DataInput over an in-memory byte string (Listing 2's reader)."""

    def __init__(self, data: Union[bytes, bytearray, memoryview], ledger: CostLedger):
        if type(data) is bytes:
            self._data = data
        else:
            # Snapshot mutable inputs once so reads stay stable even if
            # the caller recycles the underlying buffer.
            self._data = bytes(data)  # sim-lint: disable=SIM008
        self.ledger = ledger
        self.position = 0

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError(f"negative read size {n}")
        end = self.position + n
        if end > len(self._data):
            raise EndOfStream(
                f"read past end: want {n} at {self.position}, have {len(self._data)}"
            )
        chunk = self._data[self.position : end]
        self.position = end
        return chunk

    # -- zero-allocation primitive fast paths ----------------------------------
    # Decode with unpack_from/indexing at the current position instead of
    # slicing a per-primitive bytes object out of the buffer.  Ledger
    # charges are identical to the generic DataInput implementations.

    def read_byte(self) -> int:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > len(self._data):
            self.read(1)  # raises EndOfStream with the canonical message
        self.position = pos + 1
        value = self._data[pos]
        return value - 256 if value > 127 else value

    def read_unsigned_byte(self) -> int:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > len(self._data):
            self.read(1)
        self.position = pos + 1
        return self._data[pos]

    def read_boolean(self) -> bool:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > len(self._data):
            self.read(1)
        self.position = pos + 1
        return self._data[pos] != 0

    def read_short(self) -> int:
        self.ledger.charge_read_op(2)
        pos = self.position
        if pos + 2 > len(self._data):
            self.read(2)
        self.position = pos + 2
        return _SHORT.unpack_from(self._data, pos)[0]

    def read_int(self) -> int:
        self.ledger.charge_read_op(4)
        pos = self.position
        if pos + 4 > len(self._data):
            self.read(4)
        self.position = pos + 4
        return _INT.unpack_from(self._data, pos)[0]

    def read_long(self) -> int:
        self.ledger.charge_read_op(8)
        pos = self.position
        if pos + 8 > len(self._data):
            self.read(8)
        self.position = pos + 8
        return _LONG.unpack_from(self._data, pos)[0]

    def read_float(self) -> float:
        self.ledger.charge_read_op(4)
        pos = self.position
        if pos + 4 > len(self._data):
            self.read(4)
        self.position = pos + 4
        return _FLOAT.unpack_from(self._data, pos)[0]

    def read_double(self) -> float:
        self.ledger.charge_read_op(8)
        pos = self.position
        if pos + 8 > len(self._data):
            self.read(8)
        self.position = pos + 8
        return _DOUBLE.unpack_from(self._data, pos)[0]

    @property
    def remaining(self) -> int:
        return len(self._data) - self.position
