"""Standard Writable types (the ``org.apache.hadoop.io`` equivalents)."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.io.data_input import DataInput
from repro.io.data_output import DataOutput
from repro.io.writable import Writable, WritableRegistry, writable_factory


@writable_factory
class NullWritable(Writable):
    """Zero-byte placeholder (singleton semantics in Hadoop; value here)."""

    def write(self, out: DataOutput) -> None:
        pass

    def read_fields(self, inp: DataInput) -> None:
        pass


@writable_factory
class BooleanWritable(Writable):
    def __init__(self, value: bool = False):
        self.value = bool(value)

    def write(self, out: DataOutput) -> None:
        out.write_boolean(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_boolean()


@writable_factory
class ByteWritable(Writable):
    def __init__(self, value: int = 0):
        self.value = int(value)

    def write(self, out: DataOutput) -> None:
        out.write_byte(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_byte()


@writable_factory
class IntWritable(Writable):
    def __init__(self, value: int = 0):
        self.value = int(value)

    def write(self, out: DataOutput) -> None:
        out.write_int(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_int()


@writable_factory
class LongWritable(Writable):
    def __init__(self, value: int = 0):
        self.value = int(value)

    def write(self, out: DataOutput) -> None:
        out.write_long(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_long()


@writable_factory
class VIntWritable(Writable):
    def __init__(self, value: int = 0):
        self.value = int(value)

    def write(self, out: DataOutput) -> None:
        out.write_vint(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_vint()


@writable_factory
class VLongWritable(Writable):
    def __init__(self, value: int = 0):
        self.value = int(value)

    def write(self, out: DataOutput) -> None:
        out.write_vlong(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_vlong()


@writable_factory
class FloatWritable(Writable):
    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def write(self, out: DataOutput) -> None:
        out.write_float(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_float()


@writable_factory
class DoubleWritable(Writable):
    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def write(self, out: DataOutput) -> None:
        out.write_double(self.value)

    def read_fields(self, inp: DataInput) -> None:
        self.value = inp.read_double()


@writable_factory
class Text(Writable):
    """UTF-8 string with vint length prefix (Hadoop ``Text``)."""

    def __init__(self, value: str = ""):
        self.value = str(value)

    def write(self, out: DataOutput) -> None:
        encoded = self.value.encode("utf-8")
        out.write_vint(len(encoded))
        out.write_bytes_raw(encoded)

    def read_fields(self, inp: DataInput) -> None:
        length = inp.read_vint()
        if length < 0:
            raise ValueError(f"negative Text length {length}")
        self.value = inp.read_fully(length).decode("utf-8")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


@writable_factory
class BytesWritable(Writable):
    """Length-prefixed byte payload — the micro-benchmark's parameter type.

    ``read_fields`` allocates a fresh backing array (as Java does),
    which is charged to the ledger: this is where receive-side payload
    materialization cost lives in both RPC designs.
    """

    def __init__(self, value: bytes = b""):
        # Constructor snapshot, as Java's BytesWritable copies.
        self.value = bytes(value)  # sim-lint: disable=SIM008

    def write(self, out: DataOutput) -> None:
        out.write_int(len(self.value))
        out.write_bytes_raw(self.value)

    def read_fields(self, inp: DataInput) -> None:
        length = inp.read_int()
        if length < 0:
            raise ValueError(f"negative BytesWritable length {length}")
        inp.ledger.charge_heap_alloc(length)
        self.value = inp.read_fully(length)

    def __len__(self) -> int:
        return len(self.value)


@writable_factory
class ArrayWritable(Writable):
    """Homogeneous array of Writables, element class carried by name."""

    def __init__(self, values: Optional[List[Writable]] = None):
        self.values: List[Writable] = list(values or [])

    def write(self, out: DataOutput) -> None:
        out.write_int(len(self.values))
        if self.values:
            out.write_utf(WritableRegistry.name_of(type(self.values[0])))
            for value in self.values:
                value.write(out)

    def read_fields(self, inp: DataInput) -> None:
        count = inp.read_int()
        if count < 0:
            raise ValueError(f"negative array length {count}")
        self.values = []
        if count:
            cls = WritableRegistry.class_of(inp.read_utf())
            for _ in range(count):
                element = cls()
                element.read_fields(inp)
                self.values.append(element)


@writable_factory
class MapWritable(Writable):
    """Writable->Writable map, fully tagged per entry."""

    def __init__(self, entries: Optional[Dict[Writable, Writable]] = None):
        self.entries: Dict[Writable, Writable] = dict(entries or {})

    def write(self, out: DataOutput) -> None:
        out.write_int(len(self.entries))
        for key, value in self.entries.items():
            out.write_utf(WritableRegistry.name_of(type(key)))
            key.write(out)
            out.write_utf(WritableRegistry.name_of(type(value)))
            value.write(out)

    def read_fields(self, inp: DataInput) -> None:
        count = inp.read_int()
        if count < 0:
            raise ValueError(f"negative map size {count}")
        self.entries = {}
        for _ in range(count):
            key = WritableRegistry.new_instance(inp.read_utf())
            key.read_fields(inp)
            value = WritableRegistry.new_instance(inp.read_utf())
            value.read_fields(inp)
            self.entries[key] = value
