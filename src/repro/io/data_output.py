"""DataOutput: Java-compatible primitive encoding + Algorithm 1 buffers.

``DataOutputBuffer.write`` is the paper's Algorithm 1, verbatim: grow
by ``max(2*capacity, needed)``, copy old data, copy new data.  Its
adjustment counter is the source of Table I's "Avg. Mem Adjustment
Times" column.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol, Union

from repro.mem.cost import CostLedger

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_SHORT = struct.Struct(">h")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")


def _jwrap(value: int, bits: int) -> int:
    """Java two's-complement wrap: keep the low ``bits`` of ``value``.

    Java's ``writeInt``/``writeLong``/``writeShort`` never range-check —
    an int that overflowed upstream simply truncates to its low bits.
    Python ints are unbounded, so emulate the truncation explicitly
    (``struct`` would raise instead).
    """
    masked = value & ((1 << bits) - 1)
    return masked - (1 << bits) if masked >= 1 << (bits - 1) else masked


class Sink(Protocol):
    """Anything raw bytes can be pushed into."""

    def write_bytes(self, data: bytes) -> None: ...

    def flush(self) -> None: ...


class DataOutput:
    """Java ``DataOutput`` primitives over an abstract raw ``write``.

    Subclasses implement :meth:`write` (raw bytes) and inherit the
    primitive encoders.  Every primitive charges one Writable write op
    to the ledger; bulk byte copies are charged by :meth:`write`
    implementations.
    """

    ledger: CostLedger

    # -- raw ------------------------------------------------------------
    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered data toward the final sink (default: no-op)."""

    # -- primitives -------------------------------------------------------
    def write_byte(self, value: int) -> None:
        self.ledger.charge_write_op(1)
        self.write(bytes(((value + 256) % 256,)))

    def write_boolean(self, value: bool) -> None:
        self.ledger.charge_write_op(1)
        self.write(b"\x01" if value else b"\x00")

    def write_short(self, value: int) -> None:
        """Java ``writeShort``: the low 16 bits of ``value``."""
        self.ledger.charge_write_op(2)
        self.write(_SHORT.pack(_jwrap(value, 16)))

    def write_int(self, value: int) -> None:
        """Java ``writeInt``: the low 32 bits of ``value``."""
        self.ledger.charge_write_op(4)
        self.write(_INT.pack(_jwrap(value, 32)))

    def write_long(self, value: int) -> None:
        """Java ``writeLong``: the low 64 bits of ``value``."""
        self.ledger.charge_write_op(8)
        self.write(_LONG.pack(_jwrap(value, 64)))

    def write_float(self, value: float) -> None:
        self.ledger.charge_write_op(4)
        self.write(_FLOAT.pack(value))

    def write_double(self, value: float) -> None:
        self.ledger.charge_write_op(8)
        self.write(_DOUBLE.pack(value))

    def write_bytes_raw(self, data: bytes) -> None:
        """Bulk byte write counted as a single op (BytesWritable body)."""
        self.ledger.charge_write_op(len(data))
        self.write(data)

    def write_utf(self, text: str) -> None:
        """Java ``writeUTF``: 2-byte length + UTF-8 bytes."""
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"writeUTF string too long: {len(encoded)} bytes")
        self.write_short(len(encoded))
        self.ledger.charge_write_op(len(encoded))
        self.write(encoded)

    # -- Hadoop WritableUtils variable-length encodings -----------------------
    def write_vlong(self, value: int) -> None:
        """Hadoop ``WritableUtils.writeVLong`` encoding (1-9 bytes)."""
        self.ledger.charge_write_op(1)
        if -112 <= value <= 127:
            self.write(bytes(((value + 256) % 256,)))
            return
        length = -112
        if value < 0:
            value = ~value
            length = -120
        tmp = value
        while tmp != 0:
            tmp >>= 8
            length -= 1
        out = bytearray()
        out.append((length + 256) % 256)
        length = -(length + 120) if length < -120 else -(length + 112)
        for idx in range(length, 0, -1):
            shift = (idx - 1) * 8
            out.append((value >> shift) & 0xFF)
        self.write(bytes(out))

    def write_vint(self, value: int) -> None:
        self.write_vlong(value)


class DataOutputBuffer(DataOutput):
    """Growable in-memory output buffer — Listing 1's serialization target.

    Models a JVM heap ``byte[]`` with explicit capacity: the initial
    allocation and every Algorithm-1 growth charge heap-allocation
    (with zeroing + GC debt) and copy costs to the ledger.
    """

    def __init__(self, ledger: CostLedger, initial_size: int = 32):
        if initial_size < 1:
            raise ValueError(f"initial_size must be >= 1, got {initial_size}")
        self.ledger = ledger
        self.capacity = initial_size
        self.count = 0
        self._data = bytearray(initial_size)
        self.adjustments = 0
        ledger.charge_heap_alloc(initial_size)

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        """Algorithm 1: grow-if-needed (doubling), then copy new data."""
        length = len(data)
        new_count = self.count + length
        if new_count > self.capacity:
            # reallocate buffer: max(double, needed)
            new_capacity = max(self.capacity * 2, new_count)
            self.ledger.charge_heap_alloc(new_capacity)
            grown = bytearray(new_capacity)
            # copy old data
            grown[: self.count] = self._data[: self.count]
            self.ledger.charge_copy(self.count)
            self._data = grown
            self.capacity = new_capacity
            self.adjustments += 1
            self.ledger.charge_adjustment()
        # copy new data
        self._data[self.count : new_count] = data
        self.ledger.charge_copy(length)
        self.count = new_count

    def get_data(self) -> bytes:
        """The serialized bytes written so far (Listing 1's ``getData``)."""
        return bytes(self._data[: self.count])

    def get_length(self) -> int:
        return self.count

    def reset(self) -> None:
        """Rewind for reuse (keeps the grown capacity, like Java)."""
        self.count = 0


class DataOutputStream(DataOutput):
    """Primitive encoder over a raw sink (Listing 1's sending side)."""

    def __init__(self, sink: Sink, ledger: CostLedger):
        self.sink = sink
        self.ledger = ledger
        self.written = 0

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        self.sink.write_bytes(bytes(data))
        self.written += len(data)

    def flush(self) -> None:
        self.sink.flush()
