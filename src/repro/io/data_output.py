"""DataOutput: Java-compatible primitive encoding + Algorithm 1 buffers.

``DataOutputBuffer.write`` is the paper's Algorithm 1, verbatim: grow
by ``max(2*capacity, needed)``, copy old data, copy new data.  Its
adjustment counter is the source of Table I's "Avg. Mem Adjustment
Times" column.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol, Union

from repro.mem.cost import CostLedger

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_SHORT = struct.Struct(">h")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")

#: Interned single-byte strings so byte-sized writes allocate nothing.
_BYTES = tuple(bytes((i,)) for i in range(256))  # sim-lint: disable=SIM008


def _jwrap(value: int, bits: int) -> int:
    """Java two's-complement wrap: keep the low ``bits`` of ``value``.

    Java's ``writeInt``/``writeLong``/``writeShort`` never range-check —
    an int that overflowed upstream simply truncates to its low bits.
    Python ints are unbounded, so emulate the truncation explicitly
    (``struct`` would raise instead).
    """
    masked = value & ((1 << bits) - 1)
    return masked - (1 << bits) if masked >= 1 << (bits - 1) else masked


class Sink(Protocol):
    """Anything raw bytes can be pushed into."""

    def write_bytes(self, data: bytes) -> None: ...

    def flush(self) -> None: ...


class DataOutput:
    """Java ``DataOutput`` primitives over an abstract raw ``write``.

    Subclasses implement :meth:`write` (raw bytes) and inherit the
    primitive encoders.  Every primitive charges one Writable write op
    to the ledger; bulk byte copies are charged by :meth:`write`
    implementations.
    """

    ledger: CostLedger

    # -- raw ------------------------------------------------------------
    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered data toward the final sink (default: no-op)."""

    # -- primitives -------------------------------------------------------
    def write_byte(self, value: int) -> None:
        self.ledger.charge_write_op(1)
        self.write(_BYTES[(value + 256) % 256])

    def write_boolean(self, value: bool) -> None:
        self.ledger.charge_write_op(1)
        self.write(b"\x01" if value else b"\x00")

    def write_short(self, value: int) -> None:
        """Java ``writeShort``: the low 16 bits of ``value``."""
        self.ledger.charge_write_op(2)
        self.write(_SHORT.pack(_jwrap(value, 16)))

    def write_int(self, value: int) -> None:
        """Java ``writeInt``: the low 32 bits of ``value``."""
        self.ledger.charge_write_op(4)
        self.write(_INT.pack(_jwrap(value, 32)))

    def write_long(self, value: int) -> None:
        """Java ``writeLong``: the low 64 bits of ``value``."""
        self.ledger.charge_write_op(8)
        self.write(_LONG.pack(_jwrap(value, 64)))

    def write_float(self, value: float) -> None:
        self.ledger.charge_write_op(4)
        self.write(_FLOAT.pack(value))

    def write_double(self, value: float) -> None:
        self.ledger.charge_write_op(8)
        self.write(_DOUBLE.pack(value))

    def write_bytes_raw(self, data: bytes) -> None:
        """Bulk byte write counted as a single op (BytesWritable body)."""
        self.ledger.charge_write_op(len(data))
        self.write(data)

    def write_utf(self, text: str) -> None:
        """Java ``writeUTF``: 2-byte length + UTF-8 bytes."""
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"writeUTF string too long: {len(encoded)} bytes")
        self.write_short(len(encoded))
        self.ledger.charge_write_op(len(encoded))
        self.write(encoded)

    # -- Hadoop WritableUtils variable-length encodings -----------------------
    def write_vlong(self, value: int) -> None:
        """Hadoop ``WritableUtils.writeVLong`` encoding (1-9 bytes)."""
        self.ledger.charge_write_op(1)
        if -112 <= value <= 127:
            self.write(_BYTES[(value + 256) % 256])
            return
        length = -112
        if value < 0:
            value = ~value
            length = -120
        tmp = value
        while tmp != 0:
            tmp >>= 8
            length -= 1
        out = bytearray()
        out.append((length + 256) % 256)
        length = -(length + 120) if length < -120 else -(length + 112)
        for idx in range(length, 0, -1):
            shift = (idx - 1) * 8
            out.append((value >> shift) & 0xFF)
        self.write(out)

    def write_vint(self, value: int) -> None:
        self.write_vlong(value)


class DataOutputBuffer(DataOutput):
    """Growable in-memory output buffer — Listing 1's serialization target.

    Models a JVM heap ``byte[]`` with explicit capacity: the initial
    allocation and every Algorithm-1 growth charge heap-allocation
    (with zeroing + GC debt) and copy costs to the ledger.
    """

    def __init__(self, ledger: CostLedger, initial_size: int = 32):
        if initial_size < 1:
            raise ValueError(f"initial_size must be >= 1, got {initial_size}")
        self.ledger = ledger
        self.capacity = initial_size
        self.count = 0
        self._data = bytearray(initial_size)
        self.adjustments = 0
        ledger.charge_heap_alloc(initial_size)

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        """Algorithm 1: grow-if-needed (doubling), then copy new data."""
        length = len(data)
        new_count = self.count + length
        if new_count > self.capacity:
            self._grow(new_count)
        # copy new data
        self._data[self.count : new_count] = data
        self.ledger.charge_copy(length)
        self.count = new_count

    def _grow(self, new_count: int) -> None:
        """Algorithm-1 reallocation: ``max(double, needed)``, copy old data.

        A *new* backing bytearray is allocated every time (never an
        in-place resize): outstanding :meth:`get_view` exports keep the
        old buffer alive and valid, and resizing an exported bytearray
        would raise ``BufferError``.
        """
        new_capacity = max(self.capacity * 2, new_count)
        self.ledger.charge_heap_alloc(new_capacity)
        grown = bytearray(new_capacity)
        count = self.count
        with memoryview(self._data) as old:
            grown[:count] = old[:count]
        self.ledger.charge_copy(count)
        self._data = grown
        self.capacity = new_capacity
        self.adjustments += 1
        self.ledger.charge_adjustment()

    # -- zero-copy primitive fast paths ---------------------------------------
    # Each override packs directly into the backing bytearray instead of
    # materializing a per-primitive bytes object.  Ledger charges mirror
    # the generic path exactly (write-op, growth charges if any, then the
    # data copy) — the ledger models the Java behaviour, not ours.

    def write_byte(self, value: int) -> None:
        self.ledger.charge_write_op(1)
        count = self.count
        new_count = count + 1
        if new_count > self.capacity:
            self._grow(new_count)
        self._data[count] = (value + 256) % 256
        self.ledger.charge_copy(1)
        self.count = new_count

    def write_boolean(self, value: bool) -> None:
        self.ledger.charge_write_op(1)
        count = self.count
        new_count = count + 1
        if new_count > self.capacity:
            self._grow(new_count)
        self._data[count] = 1 if value else 0
        self.ledger.charge_copy(1)
        self.count = new_count

    def write_short(self, value: int) -> None:
        self.ledger.charge_write_op(2)
        count = self.count
        new_count = count + 2
        if new_count > self.capacity:
            self._grow(new_count)
        _SHORT.pack_into(self._data, count, _jwrap(value, 16))
        self.ledger.charge_copy(2)
        self.count = new_count

    def write_int(self, value: int) -> None:
        self.ledger.charge_write_op(4)
        count = self.count
        new_count = count + 4
        if new_count > self.capacity:
            self._grow(new_count)
        _INT.pack_into(self._data, count, _jwrap(value, 32))
        self.ledger.charge_copy(4)
        self.count = new_count

    def write_long(self, value: int) -> None:
        self.ledger.charge_write_op(8)
        count = self.count
        new_count = count + 8
        if new_count > self.capacity:
            self._grow(new_count)
        _LONG.pack_into(self._data, count, _jwrap(value, 64))
        self.ledger.charge_copy(8)
        self.count = new_count

    def write_float(self, value: float) -> None:
        self.ledger.charge_write_op(4)
        count = self.count
        new_count = count + 4
        if new_count > self.capacity:
            self._grow(new_count)
        _FLOAT.pack_into(self._data, count, value)
        self.ledger.charge_copy(4)
        self.count = new_count

    def write_double(self, value: float) -> None:
        self.ledger.charge_write_op(8)
        count = self.count
        new_count = count + 8
        if new_count > self.capacity:
            self._grow(new_count)
        _DOUBLE.pack_into(self._data, count, value)
        self.ledger.charge_copy(8)
        self.count = new_count

    def get_data(self) -> bytes:
        """The serialized bytes written so far (Listing 1's ``getData``)."""
        with memoryview(self._data) as view:
            # A copy is this method's contract; hot paths use get_view().
            return bytes(view[: self.count])  # sim-lint: disable=SIM008

    def get_view(self) -> memoryview:
        """Zero-copy, length-bounded view of the serialized bytes.

        The view stays valid across later writes: growth allocates a new
        backing array (see :meth:`_grow`), so an exported view keeps
        observing the bytes it was taken over.  Charges nothing, exactly
        like :meth:`get_data` (Java's ``getData`` returns the backing
        array without copying).
        """
        return memoryview(self._data)[: self.count]

    def get_length(self) -> int:
        return self.count

    def reset(self) -> None:
        """Rewind for reuse (keeps the grown capacity, like Java)."""
        self.count = 0


class DataOutputStream(DataOutput):
    """Primitive encoder over a raw sink (Listing 1's sending side)."""

    def __init__(self, sink: Sink, ledger: CostLedger):
        self.sink = sink
        self.ledger = ledger
        self.written = 0

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        # Forward the chunk unchanged (bytes, bytearray, or memoryview):
        # coercing through bytes() here copied every chunk once more.
        self.sink.write_bytes(data)
        self.written += len(data)

    def flush(self) -> None:
        self.sink.flush()
