"""The Hadoop ``Writable`` type system.

Hadoop RPC parameters and return values are ``Writable`` objects; the
RPC layer serializes them with ``write(DataOutput)`` and rebuilds them
with ``readFields(DataInput)``.  ``ObjectWritable`` is the tagged
envelope Hadoop's Invocation uses for dynamically-typed values.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.io.data_input import DataInput
from repro.io.data_output import DataOutput


class Writable:
    """Base serializable type: subclasses implement write/read_fields."""

    def write(self, out: DataOutput) -> None:
        raise NotImplementedError

    def read_fields(self, inp: DataInput) -> None:
        raise NotImplementedError

    # Value semantics make tests and call matching natural.
    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):  # pragma: no cover - rarely used
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"{type(self).__name__}({fields})"


class WritableRegistry:
    """Name -> Writable class registry (Hadoop uses Java class names).

    ``ObjectWritable`` writes the registered name on the wire so the
    receiver can instantiate the right type reflectively.
    """

    _classes: Dict[str, Type[Writable]] = {}
    _names: Dict[Type[Writable], str] = {}

    @classmethod
    def register(cls, writable_cls: Type[Writable], name: str = "") -> Type[Writable]:
        key = name or writable_cls.__name__
        existing = cls._classes.get(key)
        if existing is not None and existing is not writable_cls:
            raise ValueError(f"writable name collision: {key}")
        cls._classes[key] = writable_cls
        cls._names[writable_cls] = key
        return writable_cls

    @classmethod
    def name_of(cls, writable_cls: Type[Writable]) -> str:
        try:
            return cls._names[writable_cls]
        except KeyError:
            raise KeyError(
                f"{writable_cls.__name__} is not registered; decorate it with "
                f"@writable_factory"
            ) from None

    @classmethod
    def class_of(cls, name: str) -> Type[Writable]:
        try:
            return cls._classes[name]
        except KeyError:
            raise KeyError(f"no writable registered under {name!r}") from None

    @classmethod
    def new_instance(cls, name: str) -> Writable:
        return cls.class_of(name)()


def writable_factory(cls: Type[Writable]) -> Type[Writable]:
    """Class decorator: register a Writable for ObjectWritable dispatch.

    The class must be constructible with no arguments (Hadoop's
    ``ReflectionUtils.newInstance`` contract, Listing 2 line 13).
    """
    return WritableRegistry.register(cls)


class ObjectWritable(Writable):
    """Tagged envelope: class name + payload, as Hadoop's RPC uses.

    Wire format: Text-like short name (writeUTF) followed by the
    instance's own serialization.
    """

    def __init__(self, instance: Writable | None = None):
        self.instance = instance

    def write(self, out: DataOutput) -> None:
        if self.instance is None:
            raise ValueError("ObjectWritable has no instance to write")
        out.write_utf(WritableRegistry.name_of(type(self.instance)))
        self.instance.write(out)

    def read_fields(self, inp: DataInput) -> None:
        name = inp.read_utf()
        self.instance = WritableRegistry.new_instance(name)
        self.instance.read_fields(inp)

    @staticmethod
    def read(inp: DataInput) -> Writable:
        """Convenience: read one tagged object and return the payload."""
        envelope = ObjectWritable()
        envelope.read_fields(inp)
        assert envelope.instance is not None
        return envelope.instance
