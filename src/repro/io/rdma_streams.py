"""RDMA-backed, Java-IO-compatible streams — Section III-A/III-B.

``RDMAOutputStream`` serializes *directly* into a pooled, pre-registered
native buffer (wrapped as a DirectByteBuffer in the real system): no
JVM heap intermediates, no Algorithm-1 reallocation, no heap->native
copy before the NIC reads the data.  Growth, when the size-history
predictor under-shoots, doubles through the native pool
(:class:`~repro.mem.shadow_pool.HistoryShadowPool`).

``RDMAInputStream`` deserializes straight from the received registered
buffer — the receive path allocates nothing and copies nothing until a
Writable materializes its own fields.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.io.data_input import DataInput, EndOfStream
from repro.io.data_output import DataOutput
from repro.mem.cost import CostLedger
from repro.mem.native_pool import NativeBuffer
from repro.mem.shadow_pool import HistoryShadowPool


class RDMAOutputStream(DataOutput):
    """Serializer writing into a history-sized pooled native buffer.

    Lifecycle::

        out = RDMAOutputStream(pool, "ClientProtocol", "getFileInfo", ledger)
        ... writable.write(out) ...
        buffer, length = out.detach()     # hand to the transport
        ... transport sends; on completion ...
        out.release()                     # updates history, returns buffer

    The stream auto-maintains the message length (one of the
    conveniences the paper credits the RDMA stream classes with).
    """

    def __init__(
        self,
        pool: HistoryShadowPool,
        protocol: str,
        method: str,
        ledger: CostLedger,
    ):
        self.pool = pool
        self.protocol = protocol
        self.method = method
        self.ledger = ledger
        self.buffer: Optional[NativeBuffer] = pool.acquire(protocol, method, ledger)
        self.count = 0
        self.grown = False
        #: number of pool-doubling events (RPCoIB's analogue of Table
        #: I's memory-adjustment count — near zero once history warms).
        self.grow_count = 0
        self._detached = False

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        if self.buffer is None:
            raise RuntimeError("stream is closed")
        if self._detached:
            raise RuntimeError("stream already detached")
        length = len(data)
        while self.count + length > self.buffer.capacity:
            # Pool-backed doubling: native-to-native copy only.
            self.buffer = self.pool.grow(self.buffer, self.count, self.ledger)
            self.grown = True
            self.grow_count += 1
        end = self.count + length
        self.buffer.data[self.count : end] = data
        self.ledger.charge_copy(length)
        self.count = end

    def get_length(self) -> int:
        return self.count

    def detach(self) -> Tuple[NativeBuffer, int]:
        """Freeze and expose (buffer, length) for the transport to send."""
        if self.buffer is None:
            raise RuntimeError("stream is closed")
        self._detached = True
        return self.buffer, self.count

    def release(self) -> None:
        """Return the buffer to the pool and update the size history."""
        if self.buffer is None:
            raise RuntimeError("stream already released")
        self.pool.release(
            self.buffer,
            self.protocol,
            self.method,
            self.count,
            self.ledger,
            grown=self.grown,
        )
        self.buffer = None


class RDMAInputStream(DataInput):
    """Deserializer reading directly from a received registered buffer."""

    def __init__(
        self,
        buffer: Union[NativeBuffer, bytes, bytearray],
        length: int,
        ledger: CostLedger,
    ):
        self._view = buffer.data if isinstance(buffer, NativeBuffer) else buffer
        if length > len(self._view):
            raise ValueError(f"length {length} exceeds buffer {len(self._view)}")
        self.length = length
        self.ledger = ledger
        self.position = 0

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError(f"negative read size {n}")
        end = self.position + n
        if end > self.length:
            raise EndOfStream(
                f"read past end: want {n} at {self.position}, have {self.length}"
            )
        chunk = bytes(self._view[self.position : end])
        self.position = end
        return chunk

    @property
    def remaining(self) -> int:
        return self.length - self.position
