"""RDMA-backed, Java-IO-compatible streams — Section III-A/III-B.

``RDMAOutputStream`` serializes *directly* into a pooled, pre-registered
native buffer (wrapped as a DirectByteBuffer in the real system): no
JVM heap intermediates, no Algorithm-1 reallocation, no heap->native
copy before the NIC reads the data.  Growth, when the size-history
predictor under-shoots, doubles through the native pool
(:class:`~repro.mem.shadow_pool.HistoryShadowPool`).

``RDMAInputStream`` deserializes straight from the received registered
buffer — the receive path allocates nothing and copies nothing until a
Writable materializes its own fields.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, Union

from repro.io.data_input import DataInput, EndOfStream
from repro.io.data_output import DataOutput, _jwrap
from repro.mem.cost import CostLedger
from repro.mem.native_pool import NativeBuffer
from repro.mem.shadow_pool import HistoryShadowPool

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_SHORT = struct.Struct(">h")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")


class RDMAOutputStream(DataOutput):
    """Serializer writing into a history-sized pooled native buffer.

    Lifecycle::

        out = RDMAOutputStream(pool, "ClientProtocol", "getFileInfo", ledger)
        ... writable.write(out) ...
        buffer, length = out.detach()     # hand to the transport
        ... transport sends; on completion ...
        out.release()                     # updates history, returns buffer

    The stream auto-maintains the message length (one of the
    conveniences the paper credits the RDMA stream classes with).
    """

    def __init__(
        self,
        pool: HistoryShadowPool,
        protocol: str,
        method: str,
        ledger: CostLedger,
    ):
        self.pool = pool
        self.protocol = protocol
        self.method = method
        self.ledger = ledger
        self.buffer: Optional[NativeBuffer] = pool.acquire(protocol, method, ledger)
        self.count = 0
        self.grown = False
        #: number of pool-doubling events (RPCoIB's analogue of Table
        #: I's memory-adjustment count — near zero once history warms).
        self.grow_count = 0
        self._detached = False

    def write(self, data: Union[bytes, bytearray, memoryview]) -> None:
        if self.buffer is None:
            raise RuntimeError("stream is closed")
        if self._detached:
            raise RuntimeError("stream already detached")
        length = len(data)
        while self.count + length > self.buffer.capacity:
            # Pool-backed doubling: native-to-native copy only.
            self.buffer = self.pool.grow(self.buffer, self.count, self.ledger)
            self.grown = True
            self.grow_count += 1
        end = self.count + length
        self.buffer.data[self.count : end] = data
        self.ledger.charge_copy(length)
        self.count = end

    def _reserve(self, length: int) -> int:
        """Growth/validity checks shared by the pack_into fast paths;
        returns the write offset."""
        if self.buffer is None:
            raise RuntimeError("stream is closed")
        if self._detached:
            raise RuntimeError("stream already detached")
        while self.count + length > self.buffer.capacity:
            self.buffer = self.pool.grow(self.buffer, self.count, self.ledger)
            self.grown = True
            self.grow_count += 1
        return self.count

    # -- zero-copy primitive fast paths ---------------------------------------
    # Pack straight into the registered native buffer; ledger charges
    # mirror the generic DataOutput path (write-op, then the data copy).

    def write_byte(self, value: int) -> None:
        self.ledger.charge_write_op(1)
        count = self._reserve(1)
        self.buffer.data[count] = (value + 256) % 256
        self.ledger.charge_copy(1)
        self.count = count + 1

    def write_boolean(self, value: bool) -> None:
        self.ledger.charge_write_op(1)
        count = self._reserve(1)
        self.buffer.data[count] = 1 if value else 0
        self.ledger.charge_copy(1)
        self.count = count + 1

    def write_short(self, value: int) -> None:
        self.ledger.charge_write_op(2)
        count = self._reserve(2)
        _SHORT.pack_into(self.buffer.data, count, _jwrap(value, 16))
        self.ledger.charge_copy(2)
        self.count = count + 2

    def write_int(self, value: int) -> None:
        self.ledger.charge_write_op(4)
        count = self._reserve(4)
        _INT.pack_into(self.buffer.data, count, _jwrap(value, 32))
        self.ledger.charge_copy(4)
        self.count = count + 4

    def write_long(self, value: int) -> None:
        self.ledger.charge_write_op(8)
        count = self._reserve(8)
        _LONG.pack_into(self.buffer.data, count, _jwrap(value, 64))
        self.ledger.charge_copy(8)
        self.count = count + 8

    def write_float(self, value: float) -> None:
        self.ledger.charge_write_op(4)
        count = self._reserve(4)
        _FLOAT.pack_into(self.buffer.data, count, value)
        self.ledger.charge_copy(4)
        self.count = count + 4

    def write_double(self, value: float) -> None:
        self.ledger.charge_write_op(8)
        count = self._reserve(8)
        _DOUBLE.pack_into(self.buffer.data, count, value)
        self.ledger.charge_copy(8)
        self.count = count + 8

    def get_length(self) -> int:
        return self.count

    def detach(self) -> Tuple[NativeBuffer, int]:
        """Freeze and expose (buffer, length) for the transport to send."""
        if self.buffer is None:
            raise RuntimeError("stream is closed")
        self._detached = True
        return self.buffer, self.count

    def release(self) -> None:
        """Return the buffer to the pool and update the size history."""
        if self.buffer is None:
            raise RuntimeError("stream already released")
        self.pool.release(
            self.buffer,
            self.protocol,
            self.method,
            self.count,
            self.ledger,
            grown=self.grown,
        )
        self.buffer = None


class RDMAInputStream(DataInput):
    """Deserializer reading directly from a received registered buffer."""

    def __init__(
        self,
        buffer: Union[NativeBuffer, bytes, bytearray],
        length: int,
        ledger: CostLedger,
    ):
        self._view = buffer.data if isinstance(buffer, NativeBuffer) else buffer
        if length > len(self._view):
            raise ValueError(f"length {length} exceeds buffer {len(self._view)}")
        self.length = length
        self.ledger = ledger
        self.position = 0

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError(f"negative read size {n}")
        end = self.position + n
        if end > self.length:
            raise EndOfStream(
                f"read past end: want {n} at {self.position}, have {self.length}"
            )
        chunk = bytes(self._view[self.position : end])  # sim-lint: disable=SIM008
        self.position = end
        return chunk

    # -- zero-allocation primitive fast paths ----------------------------------
    # Decode in place from the registered buffer with unpack_from —
    # ledger charges identical to the generic DataInput implementations.

    def read_byte(self) -> int:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > self.length:
            self.read(1)  # raises EndOfStream with the canonical message
        self.position = pos + 1
        value = self._view[pos]
        return value - 256 if value > 127 else value

    def read_unsigned_byte(self) -> int:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > self.length:
            self.read(1)
        self.position = pos + 1
        return self._view[pos]

    def read_boolean(self) -> bool:
        self.ledger.charge_read_op(1)
        pos = self.position
        if pos + 1 > self.length:
            self.read(1)
        self.position = pos + 1
        return self._view[pos] != 0

    def read_short(self) -> int:
        self.ledger.charge_read_op(2)
        pos = self.position
        if pos + 2 > self.length:
            self.read(2)
        self.position = pos + 2
        return _SHORT.unpack_from(self._view, pos)[0]

    def read_int(self) -> int:
        self.ledger.charge_read_op(4)
        pos = self.position
        if pos + 4 > self.length:
            self.read(4)
        self.position = pos + 4
        return _INT.unpack_from(self._view, pos)[0]

    def read_long(self) -> int:
        self.ledger.charge_read_op(8)
        pos = self.position
        if pos + 8 > self.length:
            self.read(8)
        self.position = pos + 8
        return _LONG.unpack_from(self._view, pos)[0]

    def read_float(self) -> float:
        self.ledger.charge_read_op(4)
        pos = self.position
        if pos + 4 > self.length:
            self.read(4)
        self.position = pos + 4
        return _FLOAT.unpack_from(self._view, pos)[0]

    def read_double(self) -> float:
        self.ledger.charge_read_op(8)
        pos = self.position
        if pos + 8 > self.length:
            self.read(8)
        self.position = pos + 8
        return _DOUBLE.unpack_from(self._view, pos)[0]

    @property
    def remaining(self) -> int:
        return self.length - self.position
